// Package experiments reproduces every figure of the paper's evaluation
// (Section 5). Each figure has a runner that builds the scenario, simulates
// N snapshots, runs both the correlation algorithm (Section 4) and the
// independence baseline (Nguyen–Thiran), and reports the same series the
// paper plots. The runners are shared by cmd/experiment and by the
// repository's benchmark harness (bench_test.go).
//
// All Monte-Carlo work — the sweep points of Figures 3(a)/(b) and the
// repeated trials behind every figure point — is sharded across the
// internal/runner worker pool. Per-trial seeds are derived from Params.Seed
// with runner.DeriveSeed, so results are bit-identical for any
// Params.Workers setting, and every figure runner accepts a context for
// cancellation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/planetlab"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Scale selects the experiment size. The paper runs ~1500 paths and ~2000
// links; Small keeps the full pipeline but at a size that fits a CI budget.
type Scale string

const (
	// Small: ~150 paths — seconds per figure.
	Small Scale = "small"
	// Medium: ~500 paths — tens of seconds per figure.
	Medium Scale = "medium"
	// Paper: 1500 paths, matching the published scale — minutes per figure.
	Paper Scale = "paper"
)

type sizes struct {
	briteASes, britePaths         int
	plRouters, plVantage, plPaths int
	snapshots                     int
}

func (s Scale) sizes() (sizes, error) {
	switch s {
	case "", Small:
		return sizes{briteASes: 50, britePaths: 300, plRouters: 64, plVantage: 24, plPaths: 150, snapshots: 1200}, nil
	case Medium:
		return sizes{briteASes: 90, britePaths: 500, plRouters: 150, plVantage: 45, plPaths: 500, snapshots: 1600}, nil
	case Paper:
		return sizes{briteASes: 220, britePaths: 1500, plRouters: 450, plVantage: 90, plPaths: 1500, snapshots: 2000}, nil
	default:
		return sizes{}, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", string(s))
	}
}

// Params configures a figure run.
type Params struct {
	Scale Scale
	Seed  int64
	// Snapshots overrides the scale's snapshot count when > 0.
	Snapshots int
	// Mode selects state-level (default) or packet-level measurement.
	Mode netsim.Mode
	// PacketsPerPath for packet-level mode (0 ⇒ default).
	PacketsPerPath int
	// Trials is the number of Monte-Carlo trials behind every figure point
	// (0 ⇒ 1). Each trial re-simulates the same scenario with an
	// independently derived seed; the error samples of all trials are merged
	// before the summary statistic, tightening the estimate.
	Trials int
	// Workers caps the worker pool shared by sweep points and trials
	// (0 ⇒ GOMAXPROCS, 1 ⇒ fully serial). Results are identical for every
	// setting; only wall-clock time changes.
	Workers int
	// Progress, when non-nil, is called after each completed trial with the
	// number of trials finished and the figure's total. Calls are serialized.
	Progress func(done, total int)
}

// trials resolves the effective trial count.
func (p Params) trials() int {
	if p.Trials > 0 {
		return p.Trials
	}
	return 1
}

// pool builds the worker pool configured by Params.
func (p Params) pool() *runner.Runner {
	return &runner.Runner{Workers: p.Workers}
}

// tracker adapts Params.Progress to figure-level accounting: a figure knows
// its total trial count up front, and every completed trial ticks the shared
// counter no matter which sweep point it belongs to. Callback invocations
// are serialized.
type tracker struct {
	total int
	mu    sync.Mutex
	done  int
	fn    func(done, total int)
}

func (p Params) tracker(total int) *tracker {
	return &tracker{total: total, fn: p.Progress}
}

// tick records one completed trial. Safe for concurrent use.
func (t *tracker) tick() {
	if t == nil || t.fn == nil {
		return
	}
	t.mu.Lock()
	t.done++
	t.fn(t.done, t.total)
	t.mu.Unlock()
}

// Series is one plotted line.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a reproduced table/figure: the same series the paper plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes records scenario bookkeeping (link counts, congested counts...).
	Notes []string
}

// Render writes the figure as an aligned text table: first column X, one
// column per series.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].X {
		row := []string{fmt.Sprintf("%.4g", f.Series[0].X[i])}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// trialResult is the outcome of one Monte-Carlo trial: both algorithms'
// sorted error samples plus the bookkeeping notes.
type trialResult struct {
	corrErrs, indepErrs []float64
	notes               []string
}

// trialSeed derives the simulation seed for one trial. Trial 0 reproduces
// the historical single-trial seed (p.Seed + 1000003) so recorded figures
// stay stable; later trials branch off it with independent streams.
func trialSeed(p Params, trial int) int64 {
	root := p.Seed + 1000003
	if trial == 0 {
		return root
	}
	return runner.DeriveSeed(root, trial)
}

// trialWorkspaces hands each concurrently active worker one reusable
// evaluate workspace: the plan is shared per scenario, while all transient
// solver state is borrowed here and recycled across every trial of every
// figure.
var trialWorkspaces = sync.Pool{New: func() any { return &plan.Workspace{} }}

// runTrial simulates one trial of a scenario and runs both algorithms on
// it through the scenario's shared compiled plan. ctx must be the enclosing
// pool task's ctx: it carries this trial's share of the worker budget,
// which sizes the nested snapshot-simulator pool so total concurrency stays
// within p.Workers.
func runTrial(ctx context.Context, s *scenario.Scenario, pl *plan.Plan, p Params, snapshots, trial int) (trialResult, error) {
	var rec *netsim.Record
	var err error
	if s.Process != nil {
		// Time-indexed scenario: the sequential dynamic engine carries
		// congestion state across snapshots.
		rec, err = netsim.RunDynamic(ctx, netsim.DynamicConfig{
			Topology:       s.Topology,
			Process:        s.Process,
			Snapshots:      snapshots,
			Seed:           trialSeed(p, trial),
			Mode:           p.Mode,
			PacketsPerPath: p.PacketsPerPath,
		})
	} else {
		rec, err = netsim.RunContext(ctx, netsim.Config{
			Topology:       s.Topology,
			Model:          s.Model,
			Snapshots:      snapshots,
			Seed:           trialSeed(p, trial),
			Mode:           p.Mode,
			PacketsPerPath: p.PacketsPerPath,
			Parallelism:    p.Workers,
		})
	}
	if err != nil {
		return trialResult{}, fmt.Errorf("simulating %s: %w", s.Name, err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		return trialResult{}, fmt.Errorf("wrapping record for %s: %w", s.Name, err)
	}

	// Both algorithms run through the worker's borrowed workspace; each
	// result is consumed (error samples, note line) before the next call
	// reuses the workspace's buffers.
	ws := trialWorkspaces.Get().(*plan.Workspace)
	defer trialWorkspaces.Put(ws)

	res := trialResult{
		notes: []string{fmt.Sprintf("scenario %s: links=%d paths=%d congested=%d potentially-congested=%d snapshots=%d mode=%s trials=%d",
			s.Name, s.Topology.NumLinks(), s.Topology.NumPaths(),
			s.CongestedLinks.Len(), s.PotentiallyCongested.Len(), snapshots, p.Mode, p.trials())},
	}
	corr, err := pl.CorrelationIn(ws, src, core.Options{})
	if err != nil {
		return trialResult{}, fmt.Errorf("correlation algorithm on %s: %w", s.Name, err)
	}
	res.corrErrs = eval.AbsErrors(s.Truth, corr.CongestionProb, s.PotentiallyCongested)
	res.notes = append(res.notes, fmt.Sprintf("correlation: rank=%d/%d singles=%d pairs=%d solver=%s",
		corr.System.Rank, s.Topology.NumLinks(), corr.System.SinglePathEqs, corr.System.PairEqs, corr.Solver))
	// The independence baseline emulates Nguyen–Thiran: it uses all its
	// (incorrectly factorized, when links are correlated) observations in a
	// least-squares fit, rather than the Section-4 just-enough/L1 strategy —
	// a robust solver would quietly reject the wrong equations as outliers
	// and mask exactly the modelling error the paper measures.
	indep, err := pl.IndependenceIn(ws, src, core.Options{UseAllEquations: true})
	if err != nil {
		return trialResult{}, fmt.Errorf("independence algorithm on %s: %w", s.Name, err)
	}
	res.indepErrs = eval.AbsErrors(s.Truth, indep.CongestionProb, s.PotentiallyCongested)
	res.notes = append(res.notes, fmt.Sprintf("independence: rank=%d/%d singles=%d pairs=%d solver=%s",
		indep.System.Rank, s.Topology.NumLinks(), indep.System.SinglePathEqs, indep.System.PairEqs, indep.Solver))
	return res, nil
}

// algorithmErrors runs p.trials() Monte-Carlo trials of both algorithms on a
// scenario — sharded across the worker pool — and returns the merged sorted
// absolute errors over the potentially congested links. Results are
// bit-identical for every worker count: each trial's randomness is a
// function of (p.Seed, trial) only, and the sorted merge is order-blind.
func algorithmErrors(ctx context.Context, s *scenario.Scenario, p Params, snapshots int, tr *tracker) (corrErrs, indepErrs []float64, notes []string, err error) {
	trials := p.trials()
	// One compiled plan per scenario: every trial re-simulates and re-solves,
	// but the equation structure depends only on the topology and is shared.
	// Lazy: the two structures the trials need compile (once) on first use.
	pl, err := plan.Compile(s.Topology, plan.Options{Lazy: true})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("compiling plan for %s: %w", s.Name, err)
	}
	results, err := runner.Map(ctx, p.pool(), trials, func(ctx context.Context, t int) (trialResult, error) {
		res, err := runTrial(ctx, s, pl, p, snapshots, t)
		if err == nil {
			tr.tick()
		}
		return res, err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	corrParts := make([][]float64, trials)
	indepParts := make([][]float64, trials)
	for t, r := range results {
		corrParts[t] = r.corrErrs
		indepParts[t] = r.indepErrs
	}
	return runner.MergeSorted(corrParts), runner.MergeSorted(indepParts), results[0].notes, nil
}

func (p Params) snapshots(sz sizes) int {
	if p.Snapshots > 0 {
		return p.Snapshots
	}
	return sz.snapshots
}

func briteNetwork(p Params, sz sizes) (*brite.Network, error) {
	return brite.Generate(brite.Config{
		ASes:       sz.briteASes,
		EdgesPerAS: 2,
		Paths:      sz.britePaths,
		Seed:       p.Seed + 7,
	})
}

func planetlabNetwork(p Params, sz sizes) (*planetlab.Network, error) {
	return planetlab.Generate(planetlab.Config{
		Routers:       sz.plRouters,
		VantagePoints: sz.plVantage,
		Paths:         sz.plPaths,
		Seed:          p.Seed + 11,
	})
}

// CongestedFractions is the x-axis of Figures 3(a) and 3(b).
var CongestedFractions = []float64{0.05, 0.10, 0.15, 0.20, 0.25}

// figure3Sweep runs the Figure-3(a)/(b) sweep and summarizes each point with
// the given statistic over the absolute errors. The sweep points (and the
// trials inside each point) run concurrently on the worker pool; each
// point's scenario seed depends only on the point index, so the figure is
// identical for every worker count.
func figure3Sweep(ctx context.Context, p Params, id, title, ylabel string, stat func([]float64) float64) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "congested links (% of all links)", YLabel: ylabel,
	}
	tr := p.tracker(len(CongestedFractions) * p.trials())
	type point struct {
		corr, indep float64
		notes       []string
	}
	pts, err := runner.Map(ctx, p.pool(), len(CongestedFractions), func(ctx context.Context, i int) (point, error) {
		frac := CongestedFractions[i]
		s, err := scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: frac, Level: scenario.HighCorrelation,
			Seed: p.Seed + int64(100*i),
		})
		if err != nil {
			return point{}, err
		}
		ce, ie, notes, err := algorithmErrors(ctx, s, p, p.snapshots(sz), tr)
		if err != nil {
			return point{}, err
		}
		return point{corr: stat(ce), indep: stat(ie), notes: notes}, nil
	})
	if err != nil {
		return nil, err
	}
	corrSeries := Series{Label: "Correlation"}
	indepSeries := Series{Label: "Independence"}
	for i, pt := range pts {
		corrSeries.X = append(corrSeries.X, 100*CongestedFractions[i])
		corrSeries.Y = append(corrSeries.Y, pt.corr)
		indepSeries.X = append(indepSeries.X, 100*CongestedFractions[i])
		indepSeries.Y = append(indepSeries.Y, pt.indep)
		fig.Notes = append(fig.Notes, pt.notes...)
	}
	fig.Series = []Series{corrSeries, indepSeries}
	return fig, nil
}

// Figure3a reproduces Figure 3(a): mean absolute error vs the fraction of
// congested links, Brite topology, highly correlated congestion.
func Figure3a(ctx context.Context, p Params) (*Figure, error) {
	return figure3Sweep(ctx, p, "3a",
		"Mean absolute error, highly correlated congested links (Brite)",
		"mean absolute error", eval.Mean)
}

// Figure3b reproduces Figure 3(b): 90th percentile of the absolute error.
func Figure3b(ctx context.Context, p Params) (*Figure, error) {
	return figure3Sweep(ctx, p, "3b",
		"90th percentile of the absolute error, highly correlated congested links (Brite)",
		"90th percentile of absolute error",
		func(xs []float64) float64 { return eval.Percentile(xs, 90) })
}

// cdfFigure renders the two algorithms' error CDFs for one scenario. With
// Trials > 1 the CDF is computed over the merged error samples of all
// trials.
func cdfFigure(ctx context.Context, s *scenario.Scenario, p Params, snapshots int, id, title string) (*Figure, error) {
	ce, ie, notes, err := algorithmErrors(ctx, s, p, snapshots, p.tracker(p.trials()))
	if err != nil {
		return nil, err
	}
	pts := eval.DefaultCDFPoints()
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "absolute error", YLabel: "CDF (% of potentially congested links)",
		Series: []Series{
			{Label: "Correlation", X: pts, Y: eval.CDF(ce, pts)},
			{Label: "Independence", X: pts, Y: eval.CDF(ie, pts)},
		},
		Notes: notes,
	}
	return fig, nil
}

// Figure3c reproduces Figure 3(c): error CDF with 10% congested links,
// highly correlated, Brite topology.
func Figure3c(ctx context.Context, p Params) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 31,
	})
	if err != nil {
		return nil, err
	}
	return cdfFigure(ctx, s, p, p.snapshots(sz), "3c",
		"Error CDF, 10% congested, highly correlated (Brite)")
}

// Figure3d reproduces Figure 3(d): error CDF with 10% congested links,
// loosely correlated (≤2 congested links per correlation set).
func Figure3d(ctx context.Context, p Params) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.LooseCorrelation, Seed: p.Seed + 37,
	})
	if err != nil {
		return nil, err
	}
	return cdfFigure(ctx, s, p, p.snapshots(sz), "3d",
		"Error CDF, 10% congested, loosely correlated (Brite)")
}

// figure4 builds the unidentifiable-links scenarios of Figure 4.
func figure4(ctx context.Context, p Params, topo string, unidentFrac float64, id string) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	base, err := baseScenario(p, sz, topo)
	if err != nil {
		return nil, err
	}
	s, err := scenario.WithUnidentifiable(base, unidentFrac, p.Seed+41)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Error CDF, %d%% of congested links unidentifiable (%s), 10%% congested",
		int(100*unidentFrac), topo)
	return cdfFigure(ctx, s, p, p.snapshots(sz), id, title)
}

// figure5 builds the mislabeled-links scenarios of Figure 5.
func figure5(ctx context.Context, p Params, topo string, mislabeledFrac float64, id string) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	base, err := baseScenario(p, sz, topo)
	if err != nil {
		return nil, err
	}
	s, err := scenario.WithMislabeled(base, mislabeledFrac, 0.3, p.Seed+43)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Error CDF, %d%% of congested links mislabeled (%s), 10%% congested",
		int(100*mislabeledFrac), topo)
	return cdfFigure(ctx, s, p, p.snapshots(sz), id, title)
}

func baseScenario(p Params, sz sizes, topo string) (*scenario.Scenario, error) {
	switch topo {
	case "brite":
		net, err := briteNetwork(p, sz)
		if err != nil {
			return nil, err
		}
		return scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 53,
		})
	case "planetlab":
		net, err := planetlabNetwork(p, sz)
		if err != nil {
			return nil, err
		}
		return scenario.PlanetLab(scenario.PlanetLabConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 53,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown topology family %q (brite|planetlab)", topo)
	}
}

// Figure4a: 25% unidentifiable, Brite.
func Figure4a(ctx context.Context, p Params) (*Figure, error) {
	return figure4(ctx, p, "brite", 0.25, "4a")
}

// Figure4b: 50% unidentifiable, Brite.
func Figure4b(ctx context.Context, p Params) (*Figure, error) {
	return figure4(ctx, p, "brite", 0.50, "4b")
}

// Figure4c: 25% unidentifiable, PlanetLab.
func Figure4c(ctx context.Context, p Params) (*Figure, error) {
	return figure4(ctx, p, "planetlab", 0.25, "4c")
}

// Figure4d: 50% unidentifiable, PlanetLab.
func Figure4d(ctx context.Context, p Params) (*Figure, error) {
	return figure4(ctx, p, "planetlab", 0.50, "4d")
}

// Figure5a: 25% mislabeled, Brite.
func Figure5a(ctx context.Context, p Params) (*Figure, error) {
	return figure5(ctx, p, "brite", 0.25, "5a")
}

// Figure5b: 50% mislabeled, Brite.
func Figure5b(ctx context.Context, p Params) (*Figure, error) {
	return figure5(ctx, p, "brite", 0.50, "5b")
}

// Figure5c: 25% mislabeled, PlanetLab.
func Figure5c(ctx context.Context, p Params) (*Figure, error) {
	return figure5(ctx, p, "planetlab", 0.25, "5c")
}

// Figure5d: 50% mislabeled, PlanetLab.
func Figure5d(ctx context.Context, p Params) (*Figure, error) {
	return figure5(ctx, p, "planetlab", 0.50, "5d")
}

// Runners maps figure IDs to their runners, in the paper's order.
var Runners = []struct {
	ID  string
	Run func(context.Context, Params) (*Figure, error)
}{
	{"3a", Figure3a}, {"3b", Figure3b}, {"3c", Figure3c}, {"3d", Figure3d},
	{"4a", Figure4a}, {"4b", Figure4b}, {"4c", Figure4c}, {"4d", Figure4d},
	{"5a", Figure5a}, {"5b", Figure5b}, {"5c", Figure5c}, {"5d", Figure5d},
}

// ScenarioFigure evaluates one named registry scenario (scenario.BuildNamed)
// with the standard two-algorithm comparison and renders its error CDF — the
// bridge between the named scenario registry and the figure pipeline.
// Dynamic scenarios (flash-crowd, diurnal, link-flap, …) run on the
// sequential dynamic engine; their errors are measured against the process's
// stationary marginals.
func ScenarioFigure(ctx context.Context, name string, p Params) (*Figure, error) {
	s, err := scenario.BuildNamed(name, p.Seed)
	if err != nil {
		return nil, err
	}
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	return cdfFigure(ctx, s, p, p.snapshots(sz), "scenario:"+name,
		fmt.Sprintf("Error CDF, named scenario %q", name))
}

// Run dispatches a figure by ID ("3a" .. "5d"), or a named registry scenario
// as "scenario:<name>" (e.g. "scenario:flash-crowd").
func Run(ctx context.Context, id string, p Params) (*Figure, error) {
	if name, ok := strings.CutPrefix(id, "scenario:"); ok {
		return ScenarioFigure(ctx, name, p)
	}
	for _, r := range Runners {
		if r.ID == id {
			return r.Run(ctx, p)
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}

// RunAll runs the given figures concurrently on the worker pool and returns
// them in input order. Figure-level and trial-level parallelism share one
// worker budget; results are identical to running each figure alone. If
// figProgress is non-nil it is called (serialized) as each figure
// completes. p.Progress, if set, still reports per-trial completions with
// per-figure (done, total) counts; RunAll serializes those calls across the
// concurrently running figures.
func RunAll(ctx context.Context, ids []string, p Params, figProgress func(id string, done, total int)) ([]*Figure, error) {
	var mu sync.Mutex
	completed := 0
	if p.Progress != nil {
		// Each figure gets its own tracker; without this shared wrapper two
		// figures' trackers could invoke the user callback concurrently.
		orig := p.Progress
		var pmu sync.Mutex
		p.Progress = func(done, total int) {
			pmu.Lock()
			orig(done, total)
			pmu.Unlock()
		}
	}
	return runner.Map(ctx, p.pool(), len(ids), func(ctx context.Context, i int) (*Figure, error) {
		fig, err := Run(ctx, ids[i], p)
		if err != nil {
			return nil, fmt.Errorf("figure %s: %w", ids[i], err)
		}
		if figProgress != nil {
			mu.Lock()
			completed++
			figProgress(ids[i], completed, len(ids))
			mu.Unlock()
		}
		return fig, nil
	})
}
