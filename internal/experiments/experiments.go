// Package experiments reproduces every figure of the paper's evaluation
// (Section 5). Each figure has a runner that builds the scenario, simulates
// N snapshots, runs both the correlation algorithm (Section 4) and the
// independence baseline (Nguyen–Thiran), and reports the same series the
// paper plots. The runners are shared by cmd/experiment and by the
// repository's benchmark harness (bench_test.go).
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/planetlab"
	"repro/internal/scenario"
)

// Scale selects the experiment size. The paper runs ~1500 paths and ~2000
// links; Small keeps the full pipeline but at a size that fits a CI budget.
type Scale string

const (
	// Small: ~150 paths — seconds per figure.
	Small Scale = "small"
	// Medium: ~500 paths — tens of seconds per figure.
	Medium Scale = "medium"
	// Paper: 1500 paths, matching the published scale — minutes per figure.
	Paper Scale = "paper"
)

type sizes struct {
	briteASes, britePaths         int
	plRouters, plVantage, plPaths int
	snapshots                     int
}

func (s Scale) sizes() (sizes, error) {
	switch s {
	case "", Small:
		return sizes{briteASes: 50, britePaths: 300, plRouters: 64, plVantage: 24, plPaths: 150, snapshots: 1200}, nil
	case Medium:
		return sizes{briteASes: 90, britePaths: 500, plRouters: 150, plVantage: 45, plPaths: 500, snapshots: 1600}, nil
	case Paper:
		return sizes{briteASes: 220, britePaths: 1500, plRouters: 450, plVantage: 90, plPaths: 1500, snapshots: 2000}, nil
	default:
		return sizes{}, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", string(s))
	}
}

// Params configures a figure run.
type Params struct {
	Scale Scale
	Seed  int64
	// Snapshots overrides the scale's snapshot count when > 0.
	Snapshots int
	// Mode selects state-level (default) or packet-level measurement.
	Mode netsim.Mode
	// PacketsPerPath for packet-level mode (0 ⇒ default).
	PacketsPerPath int
}

// Series is one plotted line.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a reproduced table/figure: the same series the paper plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes records scenario bookkeeping (link counts, congested counts...).
	Notes []string
}

// Render writes the figure as an aligned text table: first column X, one
// column per series.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].X {
		row := []string{fmt.Sprintf("%.4g", f.Series[0].X[i])}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// algorithmErrors runs both algorithms on a scenario and returns the sorted
// absolute errors over the potentially congested links.
func algorithmErrors(s *scenario.Scenario, p Params, snapshots int) (corrErrs, indepErrs []float64, notes []string, err error) {
	rec, err := netsim.Run(netsim.Config{
		Topology:       s.Topology,
		Model:          s.Model,
		Snapshots:      snapshots,
		Seed:           p.Seed + 1000003,
		Mode:           p.Mode,
		PacketsPerPath: p.PacketsPerPath,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("simulating %s: %w", s.Name, err)
	}
	src := measure.NewEmpirical(rec)

	corr, err := core.Correlation(s.Topology, src, core.Options{})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("correlation algorithm on %s: %w", s.Name, err)
	}
	// The independence baseline emulates Nguyen–Thiran: it uses all its
	// (incorrectly factorized, when links are correlated) observations in a
	// least-squares fit, rather than the Section-4 just-enough/L1 strategy —
	// a robust solver would quietly reject the wrong equations as outliers
	// and mask exactly the modelling error the paper measures.
	indep, err := core.Independence(s.Topology, src, core.Options{UseAllEquations: true})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("independence algorithm on %s: %w", s.Name, err)
	}
	corrErrs = eval.AbsErrors(s.Truth, corr.CongestionProb, s.PotentiallyCongested)
	indepErrs = eval.AbsErrors(s.Truth, indep.CongestionProb, s.PotentiallyCongested)
	notes = []string{
		fmt.Sprintf("scenario %s: links=%d paths=%d congested=%d potentially-congested=%d snapshots=%d mode=%s",
			s.Name, s.Topology.NumLinks(), s.Topology.NumPaths(),
			s.CongestedLinks.Len(), s.PotentiallyCongested.Len(), snapshots, p.Mode),
		fmt.Sprintf("correlation: rank=%d/%d singles=%d pairs=%d solver=%s",
			corr.System.Rank, s.Topology.NumLinks(), corr.System.SinglePathEqs, corr.System.PairEqs, corr.Solver),
		fmt.Sprintf("independence: rank=%d/%d singles=%d pairs=%d solver=%s",
			indep.System.Rank, s.Topology.NumLinks(), indep.System.SinglePathEqs, indep.System.PairEqs, indep.Solver),
	}
	return corrErrs, indepErrs, notes, nil
}

func (p Params) snapshots(sz sizes) int {
	if p.Snapshots > 0 {
		return p.Snapshots
	}
	return sz.snapshots
}

func briteNetwork(p Params, sz sizes) (*brite.Network, error) {
	return brite.Generate(brite.Config{
		ASes:       sz.briteASes,
		EdgesPerAS: 2,
		Paths:      sz.britePaths,
		Seed:       p.Seed + 7,
	})
}

func planetlabNetwork(p Params, sz sizes) (*planetlab.Network, error) {
	return planetlab.Generate(planetlab.Config{
		Routers:       sz.plRouters,
		VantagePoints: sz.plVantage,
		Paths:         sz.plPaths,
		Seed:          p.Seed + 11,
	})
}

// CongestedFractions is the x-axis of Figures 3(a) and 3(b).
var CongestedFractions = []float64{0.05, 0.10, 0.15, 0.20, 0.25}

// figure3Sweep runs the Figure-3(a)/(b) sweep and summarizes each point with
// the given statistic over the absolute errors.
func figure3Sweep(p Params, id, title, ylabel string, stat func([]float64) float64) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "congested links (% of all links)", YLabel: ylabel,
	}
	corrSeries := Series{Label: "Correlation"}
	indepSeries := Series{Label: "Independence"}
	for i, frac := range CongestedFractions {
		s, err := scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: frac, Level: scenario.HighCorrelation,
			Seed: p.Seed + int64(100*i),
		})
		if err != nil {
			return nil, err
		}
		ce, ie, notes, err := algorithmErrors(s, p, p.snapshots(sz))
		if err != nil {
			return nil, err
		}
		corrSeries.X = append(corrSeries.X, 100*frac)
		corrSeries.Y = append(corrSeries.Y, stat(ce))
		indepSeries.X = append(indepSeries.X, 100*frac)
		indepSeries.Y = append(indepSeries.Y, stat(ie))
		fig.Notes = append(fig.Notes, notes...)
	}
	fig.Series = []Series{corrSeries, indepSeries}
	return fig, nil
}

// Figure3a reproduces Figure 3(a): mean absolute error vs the fraction of
// congested links, Brite topology, highly correlated congestion.
func Figure3a(p Params) (*Figure, error) {
	return figure3Sweep(p, "3a",
		"Mean absolute error, highly correlated congested links (Brite)",
		"mean absolute error", eval.Mean)
}

// Figure3b reproduces Figure 3(b): 90th percentile of the absolute error.
func Figure3b(p Params) (*Figure, error) {
	return figure3Sweep(p, "3b",
		"90th percentile of the absolute error, highly correlated congested links (Brite)",
		"90th percentile of absolute error",
		func(xs []float64) float64 { return eval.Percentile(xs, 90) })
}

// cdfFigure renders the two algorithms' error CDFs for one scenario.
func cdfFigure(s *scenario.Scenario, p Params, snapshots int, id, title string) (*Figure, error) {
	ce, ie, notes, err := algorithmErrors(s, p, snapshots)
	if err != nil {
		return nil, err
	}
	pts := eval.DefaultCDFPoints()
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "absolute error", YLabel: "CDF (% of potentially congested links)",
		Series: []Series{
			{Label: "Correlation", X: pts, Y: eval.CDF(ce, pts)},
			{Label: "Independence", X: pts, Y: eval.CDF(ie, pts)},
		},
		Notes: notes,
	}
	return fig, nil
}

// Figure3c reproduces Figure 3(c): error CDF with 10% congested links,
// highly correlated, Brite topology.
func Figure3c(p Params) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 31,
	})
	if err != nil {
		return nil, err
	}
	return cdfFigure(s, p, p.snapshots(sz), "3c",
		"Error CDF, 10% congested, highly correlated (Brite)")
}

// Figure3d reproduces Figure 3(d): error CDF with 10% congested links,
// loosely correlated (≤2 congested links per correlation set).
func Figure3d(p Params) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	net, err := briteNetwork(p, sz)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.LooseCorrelation, Seed: p.Seed + 37,
	})
	if err != nil {
		return nil, err
	}
	return cdfFigure(s, p, p.snapshots(sz), "3d",
		"Error CDF, 10% congested, loosely correlated (Brite)")
}

// figure4 builds the unidentifiable-links scenarios of Figure 4.
func figure4(p Params, topo string, unidentFrac float64, id string) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	base, err := baseScenario(p, sz, topo)
	if err != nil {
		return nil, err
	}
	s, err := scenario.WithUnidentifiable(base, unidentFrac, p.Seed+41)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Error CDF, %d%% of congested links unidentifiable (%s), 10%% congested",
		int(100*unidentFrac), topo)
	return cdfFigure(s, p, p.snapshots(sz), id, title)
}

// figure5 builds the mislabeled-links scenarios of Figure 5.
func figure5(p Params, topo string, mislabeledFrac float64, id string) (*Figure, error) {
	sz, err := p.Scale.sizes()
	if err != nil {
		return nil, err
	}
	base, err := baseScenario(p, sz, topo)
	if err != nil {
		return nil, err
	}
	s, err := scenario.WithMislabeled(base, mislabeledFrac, 0.3, p.Seed+43)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Error CDF, %d%% of congested links mislabeled (%s), 10%% congested",
		int(100*mislabeledFrac), topo)
	return cdfFigure(s, p, p.snapshots(sz), id, title)
}

func baseScenario(p Params, sz sizes, topo string) (*scenario.Scenario, error) {
	switch topo {
	case "brite":
		net, err := briteNetwork(p, sz)
		if err != nil {
			return nil, err
		}
		return scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 53,
		})
	case "planetlab":
		net, err := planetlabNetwork(p, sz)
		if err != nil {
			return nil, err
		}
		return scenario.PlanetLab(scenario.PlanetLabConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: p.Seed + 53,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown topology family %q (brite|planetlab)", topo)
	}
}

// Figure4a: 25% unidentifiable, Brite.
func Figure4a(p Params) (*Figure, error) { return figure4(p, "brite", 0.25, "4a") }

// Figure4b: 50% unidentifiable, Brite.
func Figure4b(p Params) (*Figure, error) { return figure4(p, "brite", 0.50, "4b") }

// Figure4c: 25% unidentifiable, PlanetLab.
func Figure4c(p Params) (*Figure, error) { return figure4(p, "planetlab", 0.25, "4c") }

// Figure4d: 50% unidentifiable, PlanetLab.
func Figure4d(p Params) (*Figure, error) { return figure4(p, "planetlab", 0.50, "4d") }

// Figure5a: 25% mislabeled, Brite.
func Figure5a(p Params) (*Figure, error) { return figure5(p, "brite", 0.25, "5a") }

// Figure5b: 50% mislabeled, Brite.
func Figure5b(p Params) (*Figure, error) { return figure5(p, "brite", 0.50, "5b") }

// Figure5c: 25% mislabeled, PlanetLab.
func Figure5c(p Params) (*Figure, error) { return figure5(p, "planetlab", 0.25, "5c") }

// Figure5d: 50% mislabeled, PlanetLab.
func Figure5d(p Params) (*Figure, error) { return figure5(p, "planetlab", 0.50, "5d") }

// Runners maps figure IDs to their runners, in the paper's order.
var Runners = []struct {
	ID  string
	Run func(Params) (*Figure, error)
}{
	{"3a", Figure3a}, {"3b", Figure3b}, {"3c", Figure3c}, {"3d", Figure3d},
	{"4a", Figure4a}, {"4b", Figure4b}, {"4c", Figure4c}, {"4d", Figure4d},
	{"5a", Figure5a}, {"5b", Figure5b}, {"5c", Figure5c}, {"5d", Figure5d},
}

// Run dispatches a figure by ID ("3a" .. "5d").
func Run(id string, p Params) (*Figure, error) {
	for _, r := range Runners {
		if r.ID == id {
			return r.Run(p)
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}
