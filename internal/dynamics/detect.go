package dynamics

import (
	"fmt"
	"math"
)

// Detector is an online change-point detector over a scalar observable — in
// the tomography pipeline, the per-snapshot fraction of congested paths,
// whose level shifts when a congestion modulator changes state.
//
// Raw per-snapshot fractions are extremely noisy on small monitors (with P
// paths the observable is P-quantized), so each observation first passes
// through an exponentially weighted moving average; the two-sided CUSUM then
// runs on the smoothed signal. The detector learns a baseline mean over the
// first Warmup observations, then accumulates smoothed deviations beyond
// Drift in two one-sided cumulative sums; an alarm fires when either sum
// crosses Threshold. After an alarm the detector resets and re-learns its
// baseline from the post-change observations, so successive shifts each
// produce one alarm. The zero value is not ready; use NewDetector for
// validated defaults.
type Detector struct {
	// Warmup is the number of observations used to learn the baseline mean
	// before deviations accumulate.
	Warmup int
	// Drift is the per-observation slack: smoothed deviations below it never
	// accumulate, making the detector blind to shifts smaller than Drift.
	Drift float64
	// Threshold is the alarm level of the cumulative sums. With a shift of
	// size Δ > Drift, the expected detection lag is ≈ 1/Smoothing (the EWMA
	// rise time) + Threshold/(Δ−Drift) observations.
	Threshold float64
	// Smoothing is the EWMA weight α in (0, 1]: smoothed = α·x + (1−α)·prev.
	// 1 disables smoothing.
	Smoothing float64

	n        int     // observations since the last reset
	mean     float64 // baseline (running mean during warmup, then frozen)
	ewma     float64 // smoothed observable
	pos, neg float64 // one-sided cumulative sums
	total    int     // observations ever seen
	changes  []int   // 0-based observation indices where alarms fired
}

// Default detector tuning: a baseline learned over 50 snapshots, EWMA
// smoothing that suppresses the quantization noise of small monitors,
// shifts of at least 10 percentage points of congested-path fraction
// visible.
const (
	DefaultWarmup    = 50
	DefaultDrift     = 0.10
	DefaultThreshold = 2.5
	DefaultSmoothing = 0.15
)

// NewDetector returns a detector with the given tuning; zero (or negative)
// parameters take the documented defaults (including DefaultSmoothing —
// construct a Detector literal to disable smoothing).
func NewDetector(warmup int, drift, threshold float64) (*Detector, error) {
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	if drift <= 0 {
		drift = DefaultDrift
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if math.IsNaN(drift) || math.IsNaN(threshold) {
		return nil, fmt.Errorf("dynamics: detector drift %v / threshold %v must be numbers", drift, threshold)
	}
	return &Detector{Warmup: warmup, Drift: drift, Threshold: threshold, Smoothing: DefaultSmoothing}, nil
}

// Observe feeds one observation and reports whether a change-point alarm
// fired on it.
func (d *Detector) Observe(x float64) bool {
	idx := d.total
	d.total++
	d.n++
	alpha := d.Smoothing
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	if d.total == 1 {
		d.ewma = x
	} else {
		d.ewma += alpha * (x - d.ewma)
	}
	if d.n <= d.Warmup {
		// Baseline learning: running mean of the smoothed signal, no
		// accumulation yet.
		d.mean += (d.ewma - d.mean) / float64(d.n)
		return false
	}
	d.pos = math.Max(0, d.pos+d.ewma-d.mean-d.Drift)
	d.neg = math.Max(0, d.neg+d.mean-d.ewma-d.Drift)
	if d.pos <= d.Threshold && d.neg <= d.Threshold {
		return false
	}
	d.changes = append(d.changes, idx)
	d.n, d.mean, d.pos, d.neg = 0, 0, 0, 0
	return true
}

// ChangePoints returns the 0-based observation indices at which alarms
// fired, in order.
func (d *Detector) ChangePoints() []int {
	out := make([]int, len(d.changes))
	copy(out, d.changes)
	return out
}

// Observed returns the number of observations fed so far.
func (d *Detector) Observed() int { return d.total }
