package dynamics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bitset"
)

// testProcess builds a two-group process with a coupled global driver.
func testProcess(t *testing.T) *MarkovModulated {
	t.Helper()
	m, err := NewMarkovModulated(Config{
		NumLinks: 8,
		Groups: []Group{
			{
				Links:   []int{0, 1, 2},
				Chain:   Chain{POn: 0.02, MeanBurst: 40},
				OnProb:  []float64{0.9, 0.8, 0.7},
				OffProb: []float64{0.01, 0.01, 0.02},
			},
			{
				Links:    []int{4, 5},
				Chain:    Chain{POn: 0.01, MeanBurst: 20},
				OnProb:   []float64{0.6, 0.6},
				OffProb:  []float64{0.0, 0.05},
				Coupling: 0.8,
			},
		},
		Global: &Chain{POn: 0.005, MeanBurst: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStartIsDeterministic(t *testing.T) {
	m := testProcess(t)
	a, b := m.Start(7), m.Start(7)
	c := m.Start(8)
	sa, sb, sc := bitset.New(8), bitset.New(8), bitset.New(8)
	differs := false
	for i := 0; i < 500; i++ {
		a.Next(sa)
		b.Next(sb)
		c.Next(sc)
		if !sa.Equal(sb) {
			t.Fatalf("snapshot %d: same seed diverged: %v vs %v", i, sa, sb)
		}
		if !sa.Equal(sc) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 drew identical 500-snapshot realizations")
	}
}

// TestStationaryMarginalsMatchEmpirical draws a long realization and checks
// the empirical per-link congestion frequencies against the computed
// stationary marginals.
func TestStationaryMarginalsMatchEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run frequency convergence")
	}
	m := testProcess(t)
	truth := m.StationaryMarginals()
	const n = 400000
	counts := make([]int, m.NumLinks())
	run := m.Start(99)
	out := bitset.New(m.NumLinks())
	for i := 0; i < n; i++ {
		run.Next(out)
		out.ForEach(func(k int) bool {
			counts[k]++
			return true
		})
	}
	for k, want := range truth {
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("link %d: empirical frequency %.4f, stationary marginal %.4f", k, got, want)
		}
	}
	// Unclaimed links never congest.
	for _, k := range []int{3, 6, 7} {
		if counts[k] != 0 || truth[k] != 0 {
			t.Errorf("unclaimed link %d: %d congestions, marginal %v", k, counts[k], truth[k])
		}
	}
}

// TestTemporalCorrelation verifies the point of the whole package: the
// process is bursty in time. P(link congested at t+1 | congested at t) must
// clearly exceed the marginal P(link congested).
func TestTemporalCorrelation(t *testing.T) {
	m := testProcess(t)
	const n = 60000
	run := m.Start(3)
	out := bitset.New(m.NumLinks())
	prev := false
	congested, after, both := 0, 0, 0
	for i := 0; i < n; i++ {
		run.Next(out)
		cur := out.Contains(0)
		if cur {
			congested++
		}
		if i > 0 {
			after++
			if prev && cur {
				both++
			}
		}
		prev = cur
	}
	marginal := float64(congested) / n
	prevCongested := 0
	// recount conditional: P(cur | prev)
	run = m.Start(3)
	prev = false
	cond := 0
	for i := 0; i < n; i++ {
		run.Next(out)
		cur := out.Contains(0)
		if i > 0 && prev {
			prevCongested++
			if cur {
				cond++
			}
		}
		prev = cur
	}
	conditional := float64(cond) / float64(prevCongested)
	if conditional < 2*marginal {
		t.Fatalf("P(congested | congested before) = %.3f, marginal %.3f: no temporal correlation", conditional, marginal)
	}
}

// TestCrossGroupCoupling verifies that a coupled group bursts more often
// than the same group uncoupled — the driver raises its stationary
// on-probability — and that the coupled marginals still match a long run
// (covered by TestStationaryMarginalsMatchEmpirical).
func TestCrossGroupCoupling(t *testing.T) {
	base := Config{
		NumLinks: 2,
		Groups: []Group{{
			Links:   []int{0, 1},
			Chain:   Chain{POn: 0.01, MeanBurst: 10},
			OnProb:  []float64{0.9, 0.9},
			OffProb: []float64{0.0, 0.0},
		}},
		Global: &Chain{POn: 0.05, MeanBurst: 100},
	}
	uncoupled, err := NewMarkovModulated(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Groups[0].Coupling = 0.9
	coupled, err := NewMarkovModulated(base)
	if err != nil {
		t.Fatal(err)
	}
	if u, c := uncoupled.GroupStationaryOn(0), coupled.GroupStationaryOn(0); c <= u {
		t.Fatalf("coupling did not raise the stationary on-probability: coupled %.4f ≤ uncoupled %.4f", c, u)
	}
}

// TestForcedBurst verifies a forced burst congests its group during exactly
// the forced range, regardless of the chain state.
func TestForcedBurst(t *testing.T) {
	m, err := NewMarkovModulated(Config{
		NumLinks: 2,
		Groups: []Group{{
			Links:   []int{0, 1},
			Chain:   Chain{POn: 0, MeanBurst: 1}, // never ignites on its own
			OnProb:  []float64{1, 1},
			OffProb: []float64{0, 0},
		}},
		Force: []ForcedBurst{{Group: 0, Start: 10, End: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := m.Start(1)
	out := bitset.New(2)
	for i := 0; i < 40; i++ {
		run.Next(out)
		inBurst := i >= 10 && i < 20
		if got := out.Contains(0) && out.Contains(1); got != inBurst {
			t.Fatalf("snapshot %d: congested=%v, want %v", i, got, inBurst)
		}
		if gr := run.(*mmRun); gr.GroupOn(0) != inBurst {
			t.Fatalf("snapshot %d: GroupOn=%v, want %v", i, gr.GroupOn(0), inBurst)
		}
	}
	// Forced bursts are transient: stationary marginals ignore them.
	if got := m.StationaryMarginals()[0]; got != 0 {
		t.Fatalf("stationary marginal %v with a never-igniting chain, want 0", got)
	}
}

func TestConfigValidation(t *testing.T) {
	valid := func() Config {
		return Config{
			NumLinks: 4,
			Groups: []Group{{
				Links:   []int{0, 1},
				Chain:   Chain{POn: 0.1, MeanBurst: 5},
				OnProb:  []float64{0.5, 0.5},
				OffProb: []float64{0, 0},
			}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		errPart string
	}{
		{"no links", func(c *Config) { c.NumLinks = 0 }, "NumLinks"},
		{"empty group", func(c *Config) { c.Groups[0].Links = nil }, "no links"},
		{"prob shape", func(c *Config) { c.Groups[0].OnProb = []float64{0.5} }, "on-probs"},
		{"bad ignition", func(c *Config) { c.Groups[0].Chain.POn = 1.5 }, "ignition"},
		{"bad burst", func(c *Config) { c.Groups[0].Chain.MeanBurst = 0.5 }, "burst"},
		{"bad coupling", func(c *Config) { c.Groups[0].Coupling = -1 }, "coupling"},
		{"link out of range", func(c *Config) { c.Groups[0].Links = []int{0, 9} }, "out of range"},
		{"duplicate link", func(c *Config) { c.Groups = append(c.Groups, c.Groups[0]) }, "two groups"},
		{"bad on-prob", func(c *Config) { c.Groups[0].OnProb[0] = 2 }, "congestion probability"},
		{"forced burst without driver", func(c *Config) { c.Force = []ForcedBurst{{Group: -1, Start: 0, End: 1}} }, "global driver"},
		{"forced burst bad group", func(c *Config) { c.Force = []ForcedBurst{{Group: 7, Start: 0, End: 1}} }, "targets group"},
		{"forced burst empty range", func(c *Config) { c.Force = []ForcedBurst{{Group: 0, Start: 5, End: 5}} }, "empty"},
	}
	for _, tc := range cases {
		cfg := valid()
		tc.mutate(&cfg)
		if _, err := NewMarkovModulated(cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		} else if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

// TestDetector pins the CUSUM detector's behavior on a synthetic level
// shift: no alarm on the flat baseline, one alarm shortly after the shift.
func TestDetector(t *testing.T) {
	d, err := NewDetector(30, 0.05, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Flat baseline at 0.1 for 200 observations: no alarms.
	for i := 0; i < 200; i++ {
		if d.Observe(0.1) {
			t.Fatalf("false alarm at flat observation %d", i)
		}
	}
	// Level shift to 0.5: alarm within Threshold/(Δ−Drift) ≈ 3 observations
	// (allow a little slack).
	fired := -1
	for i := 0; i < 50; i++ {
		if d.Observe(0.5) {
			fired = i
			break
		}
	}
	if fired < 0 || fired > 25 {
		t.Fatalf("shift detected at lag %d, want within [0,25]", fired)
	}
	cps := d.ChangePoints()
	if len(cps) != 1 || cps[0] != 200+fired {
		t.Fatalf("change points %v, want [%d]", cps, 200+fired)
	}
	// The detector re-learns the new baseline: continued 0.5 observations
	// (past the fresh warmup) stay quiet.
	for i := 0; i < 200; i++ {
		if d.Observe(0.5) {
			t.Fatalf("false alarm %d observations after re-baselining", i)
		}
	}
	if d.Observed() != 200+fired+1+200 {
		t.Fatalf("Observed() = %d", d.Observed())
	}
}

func TestDetectorDefaults(t *testing.T) {
	d, err := NewDetector(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Warmup != DefaultWarmup || d.Drift != DefaultDrift || d.Threshold != DefaultThreshold || d.Smoothing != DefaultSmoothing {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if _, err := NewDetector(10, math.NaN(), 1); err == nil {
		t.Fatal("NaN drift accepted")
	}
}
