// Package dynamics provides time-indexed congestion processes: joint
// distributions over link congestion states that evolve across snapshots,
// replacing the simulator's i.i.d. per-snapshot draw with temporally
// correlated workloads.
//
// The paper's core claim is that link losses are correlated because links
// share congestion sources. The standard dynamic extension of that model in
// loss tomography is the Markov-modulated (on/off) process: each correlation
// group carries a hidden two-state modulator chain — congestion "bursts"
// while the modulator is on, background noise while it is off — so links in
// one group congest together in time as well as in space. MarkovModulated
// implements exactly that, with configurable ignition rates, mean burst
// lengths, cross-group coupling through an optional global driver chain (a
// flash-crowd/worm-style common cause), and deterministic forced bursts for
// injecting known congestion-state shifts into demos and tests.
//
// A Process is an immutable specification. Start(seed) begins one
// deterministic realization; the netsim engine drives it one snapshot at a
// time (netsim.RunDynamic), emitting observations into the columnar
// measurement store through the streaming Append path. StationaryMarginals
// exposes the long-run per-link congestion probabilities — the ground truth
// that windowed online inference (tomography.Window) is evaluated against
// between state shifts.
package dynamics

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
)

// Process is a time-indexed congestion process over a fixed set of links.
// Implementations must be immutable after construction and safe for
// concurrent use; all evolution state lives in the Run.
type Process interface {
	// NumLinks returns the number of links the process covers.
	NumLinks() int
	// StationaryMarginals returns the long-run P(link k congested) — the
	// truth dynamic scenarios are evaluated against. Transient injections
	// (forced bursts) are excluded.
	StationaryMarginals() []float64
	// Start begins a deterministic realization: two runs started with the
	// same seed draw identical snapshot sequences.
	Start(seed int64) Run
}

// Run is one realization of a Process. Next must be called sequentially —
// snapshot t's state depends on snapshot t−1's — so a Run is not safe for
// concurrent use.
type Run interface {
	// Next advances one snapshot and draws its congested-link set into out
	// (cleared first).
	Next(out *bitset.Set)
}

// Chain parameterizes one on/off modulator: a two-state Markov chain over
// snapshots.
type Chain struct {
	// POn is the per-snapshot ignition probability P(off → on).
	POn float64
	// MeanBurst is the expected on-run length in snapshots (≥ 1); the
	// extinction probability is P(on → off) = 1/MeanBurst.
	MeanBurst float64
}

// validate checks the chain's parameters.
func (c Chain) validate(what string) error {
	if c.POn < 0 || c.POn > 1 || math.IsNaN(c.POn) {
		return fmt.Errorf("dynamics: %s ignition probability %v out of [0,1]", what, c.POn)
	}
	if c.MeanBurst < 1 || math.IsNaN(c.MeanBurst) || math.IsInf(c.MeanBurst, 0) {
		return fmt.Errorf("dynamics: %s mean burst length %v, want finite ≥ 1", what, c.MeanBurst)
	}
	return nil
}

// pOff returns the extinction probability P(on → off).
func (c Chain) pOff() float64 { return 1 / c.MeanBurst }

// Group configures one modulated congestion group: a set of links driven by
// a shared on/off modulator.
type Group struct {
	// Links are the link indices this group's modulator drives. A link may
	// appear in at most one group.
	Links []int
	// Chain is the group's modulator.
	Chain Chain
	// OnProb[i] is P(Links[i] congested | modulator on) — the burst rate.
	OnProb []float64
	// OffProb[i] is P(Links[i] congested | modulator off) — the background
	// (idiosyncratic) rate.
	OffProb []float64
	// Coupling in [0,1] couples this group to the global driver: while the
	// driver is on, the ignition probability is boosted to
	// POn + Coupling·(1−POn), so a global event ignites many groups at once.
	// Zero (or a nil Config.Global) leaves the group independent.
	Coupling float64
}

// ForcedBurst deterministically forces a modulator on during [Start, End) —
// the injection mechanism behind "known congestion-state shift" demos and
// change-point detection tests. Forced bursts are transient: they do not
// contribute to StationaryMarginals.
type ForcedBurst struct {
	// Group indexes Config.Groups; −1 forces the global driver.
	Group int
	// Start and End bound the forced-on snapshot range [Start, End).
	Start, End int
}

// Config parameterizes NewMarkovModulated.
type Config struct {
	// NumLinks is the size of the link namespace. Links not claimed by any
	// group are never congested.
	NumLinks int
	// Groups are the modulated congestion groups.
	Groups []Group
	// Global, when non-nil, is the cross-group driver chain groups couple to
	// via their Coupling factor.
	Global *Chain
	// Force lists deterministic modulator overrides.
	Force []ForcedBurst
}

// MarkovModulated is the Markov-modulated on/off congestion process: per
// group, a hidden two-state modulator chain selects between burst (OnProb)
// and background (OffProb) per-link congestion rates, and an optional global
// driver chain couples ignitions across groups. It implements Process.
type MarkovModulated struct {
	cfg        config
	stationary []float64
}

// config is the validated, defensively copied form of Config.
type config struct {
	numLinks int
	groups   []Group
	global   *Chain
	force    []ForcedBurst
}

// NewMarkovModulated validates the configuration and builds the process.
func NewMarkovModulated(cfg Config) (*MarkovModulated, error) {
	if cfg.NumLinks <= 0 {
		return nil, fmt.Errorf("dynamics: NumLinks = %d, want > 0", cfg.NumLinks)
	}
	if cfg.Global != nil {
		if err := cfg.Global.validate("global driver"); err != nil {
			return nil, err
		}
	}
	claimed := make([]bool, cfg.NumLinks)
	groups := make([]Group, len(cfg.Groups))
	for g, grp := range cfg.Groups {
		if len(grp.Links) == 0 {
			return nil, fmt.Errorf("dynamics: group %d has no links", g)
		}
		if len(grp.OnProb) != len(grp.Links) || len(grp.OffProb) != len(grp.Links) {
			return nil, fmt.Errorf("dynamics: group %d has %d links but %d on-probs and %d off-probs",
				g, len(grp.Links), len(grp.OnProb), len(grp.OffProb))
		}
		if err := grp.Chain.validate(fmt.Sprintf("group %d", g)); err != nil {
			return nil, err
		}
		if grp.Coupling < 0 || grp.Coupling > 1 || math.IsNaN(grp.Coupling) {
			return nil, fmt.Errorf("dynamics: group %d coupling %v out of [0,1]", g, grp.Coupling)
		}
		for i, k := range grp.Links {
			if k < 0 || k >= cfg.NumLinks {
				return nil, fmt.Errorf("dynamics: group %d link %d out of range [0,%d)", g, k, cfg.NumLinks)
			}
			if claimed[k] {
				return nil, fmt.Errorf("dynamics: link %d claimed by two groups", k)
			}
			claimed[k] = true
			for _, p := range []float64{grp.OnProb[i], grp.OffProb[i]} {
				if p < 0 || p > 1 || math.IsNaN(p) {
					return nil, fmt.Errorf("dynamics: group %d link %d congestion probability %v out of [0,1]", g, k, p)
				}
			}
		}
		groups[g] = Group{
			Links:    append([]int{}, grp.Links...),
			Chain:    grp.Chain,
			OnProb:   append([]float64{}, grp.OnProb...),
			OffProb:  append([]float64{}, grp.OffProb...),
			Coupling: grp.Coupling,
		}
	}
	for _, f := range cfg.Force {
		if f.Group < -1 || f.Group >= len(cfg.Groups) {
			return nil, fmt.Errorf("dynamics: forced burst targets group %d, want [-1,%d)", f.Group, len(cfg.Groups))
		}
		if f.Group == -1 && cfg.Global == nil {
			return nil, fmt.Errorf("dynamics: forced burst targets the global driver, but none is configured")
		}
		if f.Start < 0 || f.End <= f.Start {
			return nil, fmt.Errorf("dynamics: forced burst range [%d,%d) is empty or negative", f.Start, f.End)
		}
	}
	var global *Chain
	if cfg.Global != nil {
		g := *cfg.Global
		global = &g
	}
	m := &MarkovModulated{cfg: config{
		numLinks: cfg.NumLinks,
		groups:   groups,
		global:   global,
		force:    append([]ForcedBurst{}, cfg.Force...),
	}}
	m.stationary = m.computeStationary()
	return m, nil
}

// NumLinks implements Process.
func (m *MarkovModulated) NumLinks() int { return m.cfg.numLinks }

// NumGroups returns the number of modulated groups.
func (m *MarkovModulated) NumGroups() int { return len(m.cfg.groups) }

// StationaryMarginals implements Process: per link, the stationary
// probability the modulator is on times OnProb plus the complement times
// OffProb. With coupling, the (driver, modulator) pair is itself a four-state
// Markov chain whose stationary distribution is computed by power iteration.
func (m *MarkovModulated) StationaryMarginals() []float64 {
	out := make([]float64, len(m.stationary))
	copy(out, m.stationary)
	return out
}

// GroupStationaryOn returns the stationary probability that group g's
// modulator is on.
func (m *MarkovModulated) GroupStationaryOn(g int) float64 {
	return m.groupPiOn(m.cfg.groups[g])
}

// groupPiOn computes one group's stationary on-probability.
func (m *MarkovModulated) groupPiOn(grp Group) float64 {
	pOn, pOff := grp.Chain.POn, grp.Chain.pOff()
	if m.cfg.global == nil || grp.Coupling == 0 {
		if pOn == 0 && pOff == 0 {
			return 0
		}
		return pOn / (pOn + pOff)
	}
	// Coupled: the pair (driver z, modulator h) is Markov. The driver
	// transitions first, then the modulator ignites under the NEW driver
	// state (a global event ignites groups in the same snapshot). Power-
	// iterate the 4-state distribution to its fixed point.
	zOn, zOff := m.cfg.global.POn, m.cfg.global.pOff()
	boosted := pOn + grp.Coupling*(1-pOn)
	pz := [2][2]float64{{1 - zOn, zOn}, {zOff, 1 - zOff}} // pz[z][z']
	ignite := [2]float64{pOn, boosted}                    // P(off→on | z')
	ph := func(zn, h, hn int) float64 {                   // P(h→h' | z')
		if h == 0 {
			return [2]float64{1 - ignite[zn], ignite[zn]}[hn]
		}
		return [2]float64{pOff, 1 - pOff}[hn]
	}
	// State index: z*2 + h.
	pi := [4]float64{0.25, 0.25, 0.25, 0.25}
	for iter := 0; iter < 100000; iter++ {
		var next [4]float64
		for s, p := range pi {
			if p == 0 {
				continue
			}
			z, h := s/2, s%2
			for zn := 0; zn < 2; zn++ {
				for hn := 0; hn < 2; hn++ {
					next[zn*2+hn] += p * pz[z][zn] * ph(zn, h, hn)
				}
			}
		}
		delta := 0.0
		for s := range pi {
			delta += math.Abs(next[s] - pi[s])
		}
		pi = next
		if delta < 1e-15 {
			break
		}
	}
	return pi[1] + pi[3]
}

// computeStationary fills the per-link stationary marginals.
func (m *MarkovModulated) computeStationary() []float64 {
	out := make([]float64, m.cfg.numLinks)
	for _, grp := range m.cfg.groups {
		piOn := m.groupPiOn(grp)
		for i, k := range grp.Links {
			out[k] = piOn*grp.OnProb[i] + (1-piOn)*grp.OffProb[i]
		}
	}
	return out
}

// Start implements Process. The initial modulator states are drawn from
// each chain's stationary distribution, so realizations are stationary from
// snapshot 0 (absent forced bursts).
func (m *MarkovModulated) Start(seed int64) Run {
	rng := rand.New(rand.NewSource(seed))
	r := &mmRun{m: m, rng: rng, on: make([]bool, len(m.cfg.groups))}
	if m.cfg.global != nil {
		c := *m.cfg.global
		r.globalOn = rng.Float64() < c.POn/(c.POn+c.pOff())
	}
	for g, grp := range m.cfg.groups {
		r.on[g] = rng.Float64() < m.groupPiOn(grp)
	}
	return r
}

// mmRun is one realization of a MarkovModulated process.
type mmRun struct {
	m        *MarkovModulated
	rng      *rand.Rand
	t        int
	globalOn bool
	on       []bool
}

// forced reports whether a forced burst pins the modulator of group g
// (−1 = global driver) on at snapshot t.
func (r *mmRun) forced(g, t int) bool {
	for _, f := range r.m.cfg.force {
		if f.Group == g && t >= f.Start && t < f.End {
			return true
		}
	}
	return false
}

// Next implements Run: advance the driver, then every group modulator, then
// emit per-link congestion conditioned on the modulator states.
func (r *mmRun) Next(out *bitset.Set) {
	out.Clear()
	cfg := &r.m.cfg
	if cfg.global != nil {
		if r.globalOn {
			r.globalOn = r.rng.Float64() >= cfg.global.pOff()
		} else {
			r.globalOn = r.rng.Float64() < cfg.global.POn
		}
	}
	globalOn := r.globalOn || r.forced(-1, r.t)
	for g := range cfg.groups {
		grp := &cfg.groups[g]
		if r.on[g] {
			r.on[g] = r.rng.Float64() >= grp.Chain.pOff()
		} else {
			ignite := grp.Chain.POn
			if globalOn && grp.Coupling > 0 {
				ignite += grp.Coupling * (1 - ignite)
			}
			r.on[g] = r.rng.Float64() < ignite
		}
		on := r.on[g] || r.forced(g, r.t)
		probs := grp.OffProb
		if on {
			probs = grp.OnProb
		}
		for i, k := range grp.Links {
			if p := probs[i]; p > 0 && r.rng.Float64() < p {
				out.Add(k)
			}
		}
	}
	r.t++
}

// GroupOn reports whether group g's modulator (including forced bursts) was
// on in the most recently drawn snapshot. It is a diagnostics hook for tests
// and demos; it panics before the first Next.
func (r *mmRun) GroupOn(g int) bool {
	if r.t == 0 {
		panic("dynamics: GroupOn before the first Next")
	}
	return r.on[g] || r.forced(g, r.t-1)
}
