package linalg

import "repro/internal/bitset"

// GF2Basis incrementally tracks the GF(2) row space of 0/1 equation rows,
// represented as bit sets. It is the fast-path rank tracker for large
// tomography systems: XOR elimination over packed words is orders of
// magnitude cheaper than floating-point Gram–Schmidt.
//
// Soundness: rows independent over GF(2) are independent over the rationals
// (a primitive integer dependency survives reduction mod 2), so every row
// accepted by GF2Basis genuinely increases the real rank. The converse can
// fail — a row may be rejected although it is rationally independent — so a
// GF2-driven selection can under-collect equations; the solver's
// underdetermined completion covers that rare case.
type GF2Basis struct {
	// rows are kept fully reduced: each has a distinct pivot (minimum set
	// bit), and no row contains another row's pivot.
	rows   []*bitset.Set
	pivots map[int]*bitset.Set
}

// NewGF2Basis returns an empty basis.
func NewGF2Basis() *GF2Basis {
	return &GF2Basis{pivots: make(map[int]*bitset.Set)}
}

// Rank returns the number of independent rows accepted so far.
func (b *GF2Basis) Rank() int { return len(b.rows) }

// reduce XORs basis rows into a copy of row until its minimum bit is not a
// pivot; returns the reduced copy (possibly empty).
func (b *GF2Basis) reduce(row *bitset.Set) *bitset.Set {
	r := row.Clone()
	for {
		m := r.Min()
		if m < 0 {
			return r
		}
		p, ok := b.pivots[m]
		if !ok {
			return r
		}
		r.SymmetricDifferenceWith(p)
	}
}

// WouldIncreaseRank reports whether row is GF(2)-independent of the accepted
// rows, without modifying the basis.
func (b *GF2Basis) WouldIncreaseRank(row *bitset.Set) bool {
	return !b.reduce(row).IsEmpty()
}

// Add offers a row; if independent, the basis is extended and Add returns
// true.
func (b *GF2Basis) Add(row *bitset.Set) bool {
	r := b.reduce(row)
	if r.IsEmpty() {
		return false
	}
	b.rows = append(b.rows, r)
	b.pivots[r.Min()] = r
	return true
}
