package linalg

import (
	"math/rand"
	"testing"
)

// TestSolverDimensionErrors pins the exact error strings of the dense
// solvers on malformed inputs — nil matrices and mismatched dimensions must
// surface as errors, never panics.
func TestSolverDimensionErrors(t *testing.T) {
	a32 := NewMatrix(3, 2)
	a23 := NewMatrix(2, 3)
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"SolveLU nil matrix", func() error { _, err := SolveLU(nil, nil); return err },
			"linalg: SolveLU: nil matrix"},
		{"SolveLU non-square", func() error { _, err := SolveLU(a32, make([]float64, 3)); return err },
			"linalg: SolveLU needs a square matrix, got 3×2"},
		{"SolveLU short rhs", func() error { _, err := SolveLU(NewMatrix(2, 2), []float64{1}); return err },
			"linalg: SolveLU rhs has length 1, want 2"},
		{"LeastSquares nil matrix", func() error { _, err := LeastSquares(nil, nil); return err },
			"linalg: LeastSquares: nil matrix"},
		{"LeastSquares underdetermined", func() error { _, err := LeastSquares(a23, make([]float64, 2)); return err },
			"linalg: LeastSquares needs rows ≥ cols, got 2×3 (use MinNormSolve)"},
		{"LeastSquares short rhs", func() error { _, err := LeastSquares(a32, []float64{1}); return err },
			"linalg: LeastSquares rhs has length 1, want 3"},
		{"MinNormSolve nil matrix", func() error { _, err := MinNormSolve(nil, nil); return err },
			"linalg: MinNormSolve: nil matrix"},
		{"MinNormSolve short rhs", func() error { _, err := MinNormSolve(a23, []float64{1}); return err },
			"linalg: MinNormSolve rhs has length 1, want 2"},
	}
	var ws Workspace
	wsCases := []struct {
		name string
		call func() error
		want string
	}{
		{"Workspace.SolveLU nil", func() error { _, err := ws.SolveLU(nil, nil); return err },
			"linalg: SolveLU: nil matrix"},
		{"Workspace.LeastSquares nil", func() error { _, err := ws.LeastSquares(nil, nil); return err },
			"linalg: LeastSquares: nil matrix"},
		{"Workspace.MinNormSolve nil", func() error { _, err := ws.MinNormSolve(nil, nil); return err },
			"linalg: MinNormSolve: nil matrix"},
	}
	for _, c := range append(cases, wsCases...) {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatalf("no error, want %q", c.want)
			}
			if err.Error() != c.want {
				t.Fatalf("error = %q, want %q", err.Error(), c.want)
			}
		})
	}
}

// TestSolversSurviveRandomShapes: fuzz-style randomized shapes must never
// panic any solver, allocating or workspace-backed.
func TestSolversSurviveRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var ws Workspace
	for trial := 0; trial < 400; trial++ {
		m, n := rng.Intn(5), rng.Intn(5)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, rng.Intn(6))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		_, _ = SolveLU(a, b)
		_, _ = LeastSquares(a, b)
		_, _ = MinNormSolve(a, b)
		_, _ = ws.SolveLU(a, b)
		_, _ = ws.LeastSquares(a, b)
		_, _ = ws.MinNormSolve(a, b)
	}
}

// TestWorkspaceSolversMatchAllocating pins the workspace solvers against
// their allocating counterparts across a reused workspace: identical
// results, bit for bit.
func TestWorkspaceSolversMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var ws Workspace
	check := func(name string, want, got []float64, wantErr, gotErr error) {
		t.Helper()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: workspace err %v, allocating err %v", name, gotErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		if len(want) != len(got) {
			t.Fatalf("%s: workspace len %d, allocating %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: x[%d] workspace %v != allocating %v", name, i, got[i], want[i])
			}
		}
	}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(3)
		sq := NewMatrix(n, n)
		for i := range sq.Data {
			sq.Data[i] = rng.NormFloat64()
		}
		tall := NewMatrix(m, n)
		for i := range tall.Data {
			tall.Data[i] = rng.NormFloat64()
		}
		bn := make([]float64, n)
		bm := make([]float64, m)
		for i := range bn {
			bn[i] = rng.NormFloat64()
		}
		for i := range bm {
			bm[i] = rng.NormFloat64()
		}

		want, wantErr := SolveLU(sq, bn)
		got, gotErr := ws.SolveLU(sq, bn)
		check("SolveLU", want, got, wantErr, gotErr)

		want, wantErr = LeastSquares(tall, bm)
		got, gotErr = ws.LeastSquares(tall, bm)
		check("LeastSquares", want, got, wantErr, gotErr)

		want, wantErr = MinNormSolve(tall, bm)
		got, gotErr = ws.MinNormSolve(tall, bm)
		check("MinNormSolve", want, got, wantErr, gotErr)
	}
}
