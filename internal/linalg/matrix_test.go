package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestSolveLUKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  => x = 1, y = 3
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLU(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{3, 2}, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLUDimensionErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := FromRows([][]float64{{1, 0}, {0, 1}})
	if _, err := SolveLU(sq, []float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

// Property: for random well-conditioned square systems, SolveLU recovers the
// planted solution.
func TestSolveLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEqual(got, want, 1e-8) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Consistent overdetermined system: solution must be exact.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := []float64{2, -3}
	b := a.MulVec(want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(got, want, 1e-10) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		m, n := 8+rng.Intn(8), 2+rng.Intn(5)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := Sub(a.MulVec(x), b)
		atr := a.TransposeMulVec(r)
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("trial %d: Aᵀr = %v not ~0", trial, atr)
			}
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system accepted")
	}
}

func TestLeastSquaresUnderdeterminedRejected(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

func TestMinNormSolve(t *testing.T) {
	// x + y = 2 has min-norm solution (1, 1).
	a := FromRows([][]float64{{1, 1}})
	x, err := MinNormSolve(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{1, 1}, 1e-6) {
		t.Fatalf("x = %v, want [1 1]", x)
	}
}

// Property: MinNormSolve satisfies the constraints, and any feasible
// perturbation within the row space has larger norm.
func TestMinNormSolveIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m, n := 2+rng.Intn(3), 6+rng.Intn(6) // underdetermined
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := MinNormSolve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := Sub(a.MulVec(x), b); Norm2(r) > 1e-5 {
			t.Fatalf("trial %d: infeasible, residual %v", trial, Norm2(r))
		}
		// Add a random null-space direction: norm must not decrease.
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		// Project z onto null space: z - Aᵀ(AAᵀ)⁻¹Az
		az := a.MulVec(z)
		corr, err := MinNormSolve(a, az)
		if err != nil {
			t.Fatal(err)
		}
		null := Sub(z, corr)
		pert := make([]float64, n)
		for i := range pert {
			pert[i] = x[i] + null[i]
		}
		if Norm2(pert) < Norm2(x)-1e-6 {
			t.Fatalf("trial %d: found feasible point with smaller norm", trial)
		}
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := a.MulVec([]float64{1, 1})
	if !vecAlmostEqual(got, []float64{3, 7, 11}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
	gt := a.TransposeMulVec([]float64{1, 0, 1})
	if !vecAlmostEqual(gt, []float64{6, 8}, 0) {
		t.Fatalf("TransposeMulVec = %v", gt)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	if Norm1([]float64{-1, 2, -3}) != 6 {
		t.Fatal("Norm1")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2")
	}
	if !vecAlmostEqual(Sub([]float64{3, 4}, []float64{1, 1}), []float64{2, 3}, 0) {
		t.Fatal("Sub")
	}
}

func TestRowBasisBasics(t *testing.T) {
	rb := NewRowBasis(3, 0)
	if !rb.Add([]float64{1, 0, 0}) {
		t.Fatal("first row rejected")
	}
	if rb.Add([]float64{2, 0, 0}) {
		t.Fatal("dependent row accepted")
	}
	if !rb.WouldIncreaseRank([]float64{0, 1, 0}) {
		t.Fatal("independent row not recognized")
	}
	if rb.Rank() != 1 {
		t.Fatalf("Rank = %d after WouldIncreaseRank (must not mutate)", rb.Rank())
	}
	rb.Add([]float64{0, 1, 0})
	rb.Add([]float64{1, 1, 0}) // dependent
	if rb.Rank() != 2 {
		t.Fatalf("Rank = %d, want 2", rb.Rank())
	}
	rb.Add([]float64{1, 1, 1})
	if !rb.Full() {
		t.Fatal("basis should be full")
	}
	if rb.Add([]float64{9, 9, 9}) {
		t.Fatal("full basis accepted another row")
	}
	if rb.Add(make([]float64, 3)) {
		t.Fatal("zero row accepted")
	}
}

// Property: RowBasis rank equals the true rank of random low-rank matrices
// constructed as products of random factors.
func TestRowBasisRankMatchesConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		r := 1 + rng.Intn(n)
		// m = L·R with L m×r and R r×n ⇒ rank ≤ r, almost surely == r.
		rows := 2 * n
		l := NewMatrix(rows, r)
		rm := NewMatrix(r, n)
		for i := range l.Data {
			l.Data[i] = rng.NormFloat64()
		}
		for i := range rm.Data {
			rm.Data[i] = rng.NormFloat64()
		}
		m := NewMatrix(rows, n)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < r; k++ {
					s += l.At(i, k) * rm.At(k, j)
				}
				m.Set(i, j, s)
			}
		}
		if got := Rank(m); got != r {
			t.Fatalf("trial %d: Rank = %d, want %d", trial, got, r)
		}
	}
}

func TestRankEdgeCases(t *testing.T) {
	if Rank(NewMatrix(0, 0)) != 0 {
		t.Fatal("empty matrix rank")
	}
	if Rank(NewMatrix(3, 3)) != 0 {
		t.Fatal("zero matrix rank")
	}
}

// Property (quick): Dot is symmetric and bilinear over random vectors.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		return almostEqual(d1, d2, 1e-9*(1+math.Abs(d1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
