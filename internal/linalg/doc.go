// Package linalg provides the dense linear algebra needed by the tomography
// algorithms: LU solves for square systems, Householder-QR least squares for
// overdetermined systems, minimum-norm solutions for underdetermined ones,
// and an incremental orthogonal row basis used to select linearly
// independent measurement equations.
//
// Paper mapping (Ghita, Argyraki, Thiran — IMC 2010): Section 4 reduces
// inference to the log-linear system built from the single-path equations
// (Eq. 9) and pair equations (Eq. 10); this package supplies the solvers
// that internal/core applies to that system, and RowBasis implements the
// "just enough independent equations" selection the algorithm performs
// while scanning candidate paths and pairs. The GF(2) basis supports the
// Assumption-4 identifiability check of Section 3 (internal/topology).
//
// Everything is stdlib-only and sized for the problem at hand (up to a few
// thousand unknowns), favouring clarity and numerical robustness over BLAS-
// level performance.
package linalg
