package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero-valued r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (not a copy).
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Reshape resizes m to r×c in place, reusing the backing array when it is
// large enough. The element values after a reshape are unspecified; callers
// must fill (or Zero) the matrix before reading it.
func (m *Matrix) Reshape(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	n := r * c
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = r, c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom reshapes m to src's dimensions and copies src's elements.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.Reshape(src.Rows, src.Cols)
	copy(m.Data, src.Data)
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out
}

// TransposeMulVec returns mᵀ·x.
func (m *Matrix) TransposeMulVec(x []float64) []float64 {
	out := make([]float64, m.Cols)
	m.TransposeMulVecInto(x, out)
	return out
}

// TransposeMulVecInto computes mᵀ·x into out (which must have length Cols) —
// the allocation-free form of TransposeMulVec.
func (m *Matrix) TransposeMulVecInto(x, out []float64) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: TransposeMulVec dimension mismatch: %d rows vs %d vec", m.Rows, len(x)))
	}
	if len(out) != m.Cols {
		panic(fmt.Sprintf("linalg: TransposeMulVec out has length %d, want %d", len(out), m.Cols))
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xr := x[r]
		if xr == 0 {
			continue
		}
		for c, v := range row {
			out[c] += v * xr
		}
	}
}

// ErrSingular is returned when a square solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// SolveLU solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	if err := checkSolveLU(a, b); err != nil {
		return nil, err
	}
	m := a.Clone()
	x := make([]float64, a.Rows)
	copy(x, b)
	if err := solveLUInPlace(m, x); err != nil {
		return nil, err
	}
	return x, nil
}

func checkSolveLU(a *Matrix, b []float64) error {
	if a == nil {
		return fmt.Errorf("linalg: SolveLU: nil matrix")
	}
	if a.Cols != a.Rows {
		return fmt.Errorf("linalg: SolveLU needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("linalg: SolveLU rhs has length %d, want %d", len(b), a.Rows)
	}
	return nil
}

// solveLUInPlace is the elimination core shared by SolveLU and the
// workspace variants: m is destroyed, x holds b on entry and the solution on
// return. Dimensions must already be validated.
func solveLUInPlace(m *Matrix, x []float64) error {
	n := m.Rows
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-12 {
			return ErrSingular
		}
		if piv != col {
			ra, rb := m.Row(col), m.Row(piv)
			for c := range ra {
				ra[c], rb[c] = rb[c], ra[c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			rowR, rowC := m.Row(r), m.Row(col)
			for c := col; c < n; c++ {
				rowR[c] -= f * rowC[c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		row := m.Row(r)
		for c := r + 1; c < n; c++ {
			s -= row[c] * x[c]
		}
		x[r] = s / row[r]
	}
	return nil
}

// LeastSquares solves min‖A·x − b‖₂ for an m×n matrix with m ≥ n using
// Householder QR. Returns ErrSingular if A is (numerically) rank deficient.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if err := checkLeastSquares(a, b); err != nil {
		return nil, err
	}
	qr := a.Clone()
	y := make([]float64, a.Rows)
	copy(y, b)
	rdiag := make([]float64, a.Cols)
	x := make([]float64, a.Cols)
	if err := leastSquaresInPlace(qr, y, rdiag, x); err != nil {
		return nil, err
	}
	return x, nil
}

func checkLeastSquares(a *Matrix, b []float64) error {
	if a == nil {
		return fmt.Errorf("linalg: LeastSquares: nil matrix")
	}
	if a.Rows < a.Cols {
		return fmt.Errorf("linalg: LeastSquares needs rows ≥ cols, got %d×%d (use MinNormSolve)", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("linalg: LeastSquares rhs has length %d, want %d", len(b), a.Rows)
	}
	return nil
}

// leastSquaresInPlace is the QR core shared by LeastSquares and the
// workspace variant: qr and y are destroyed, rdiag (length Cols) is scratch,
// and the solution lands in x (length Cols). Dimensions must already be
// validated.
func leastSquaresInPlace(qr *Matrix, y, rdiag, x []float64) error {
	m, n := qr.Rows, qr.Cols

	// Householder QR, LINPACK/JAMA formulation: column k of qr below the
	// diagonal stores the (scaled) Householder vector, rdiag[k] stores R's
	// diagonal, and qr's strict upper triangle stores the rest of R.
	for k := 0; k < n; k++ {
		nrm := 0.0
		for r := k; r < m; r++ {
			nrm = math.Hypot(nrm, qr.At(r, k))
		}
		if nrm < 1e-12 {
			return ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for r := k; r < m; r++ {
			qr.Set(r, k, qr.At(r, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)

		// Apply the reflector to the remaining columns.
		for c := k + 1; c < n; c++ {
			s := 0.0
			for r := k; r < m; r++ {
				s += qr.At(r, k) * qr.At(r, c)
			}
			s = -s / qr.At(k, k)
			for r := k; r < m; r++ {
				qr.Set(r, c, qr.At(r, c)+s*qr.At(r, k))
			}
		}
		// Apply the reflector to the right-hand side.
		s := 0.0
		for r := k; r < m; r++ {
			s += qr.At(r, k) * y[r]
		}
		s = -s / qr.At(k, k)
		for r := k; r < m; r++ {
			y[r] += s * qr.At(r, k)
		}
		rdiag[k] = -nrm
	}

	// Back substitution with R.
	for r := n - 1; r >= 0; r-- {
		s := y[r]
		for c := r + 1; c < n; c++ {
			s -= qr.At(r, c) * x[c]
		}
		if math.Abs(rdiag[r]) < 1e-12 {
			return ErrSingular
		}
		x[r] = s / rdiag[r]
	}
	return nil
}

// MinNormSolve returns the minimum-L2-norm x with A·x ≈ b for an
// underdetermined (or any) system, computed as x = Aᵀ·(A·Aᵀ + λI)⁻¹·b with a
// tiny Tikhonov term λ for numerical safety.
func MinNormSolve(a *Matrix, b []float64) ([]float64, error) {
	if err := checkMinNorm(a, b); err != nil {
		return nil, err
	}
	g := NewMatrix(a.Rows, a.Rows)
	w := make([]float64, a.Rows)
	if err := minNormGram(a, b, g, w); err != nil {
		return nil, err
	}
	return a.TransposeMulVec(w), nil
}

func checkMinNorm(a *Matrix, b []float64) error {
	if a == nil {
		return fmt.Errorf("linalg: MinNormSolve: nil matrix")
	}
	if len(b) != a.Rows {
		return fmt.Errorf("linalg: MinNormSolve rhs has length %d, want %d", len(b), a.Rows)
	}
	return nil
}

// minNormGram builds the regularized Gram system G = A·Aᵀ + λI into g
// (pre-reshaped to Rows×Rows) and solves G·w = b in place: g is destroyed
// and w (length Rows, holding b on entry... filled here) receives the dual
// solution. Shared by MinNormSolve and the workspace variant.
func minNormGram(a *Matrix, b []float64, g *Matrix, w []float64) error {
	m := a.Rows
	for i := 0; i < m; i++ {
		ri := a.Row(i)
		for j := i; j < m; j++ {
			rj := a.Row(j)
			s := 0.0
			for c := range ri {
				s += ri[c] * rj[c]
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	const lambda = 1e-10
	for i := 0; i < m; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	copy(w, b)
	return solveLUInPlace(g, w)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sub returns a − b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
