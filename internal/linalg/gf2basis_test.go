package linalg

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

func TestGF2BasisBasics(t *testing.T) {
	b := NewGF2Basis()
	if b.Rank() != 0 {
		t.Fatal("fresh basis has nonzero rank")
	}
	if !b.Add(bitset.FromIndices(0, 1)) {
		t.Fatal("first row rejected")
	}
	if b.Add(bitset.FromIndices(0, 1)) {
		t.Fatal("duplicate row accepted")
	}
	if !b.WouldIncreaseRank(bitset.FromIndices(1, 2)) {
		t.Fatal("independent row not recognized")
	}
	if b.Rank() != 1 {
		t.Fatal("WouldIncreaseRank mutated the basis")
	}
	b.Add(bitset.FromIndices(1, 2))
	// {0,1} ⊕ {1,2} = {0,2}: dependent.
	if b.Add(bitset.FromIndices(0, 2)) {
		t.Fatal("XOR-dependent row accepted")
	}
	if b.Add(bitset.New(8)) {
		t.Fatal("zero row accepted")
	}
	if b.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", b.Rank())
	}
}

// Property: on random 0/1 rows, GF2-accepted rows are also independent over
// the reals (the soundness direction the equation builder relies on).
func TestGF2AcceptedRowsAreRealIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		dim := 8 + rng.Intn(12)
		gf2 := NewGF2Basis()
		real := NewRowBasis(dim, 0)
		for i := 0; i < 3*dim; i++ {
			row := bitset.New(dim)
			for k := 0; k < dim; k++ {
				if rng.Intn(3) == 0 {
					row.Add(k)
				}
			}
			if !gf2.WouldIncreaseRank(row) {
				continue
			}
			gf2.Add(row)
			frow := make([]float64, dim)
			row.ForEach(func(k int) bool {
				frow[k] = 1
				return true
			})
			if !real.Add(frow) {
				t.Fatalf("trial %d: GF2 accepted a row that is real-dependent", trial)
			}
		}
	}
}

// Property: GF2 rank never exceeds dimension, and equals dimension when all
// singleton rows are offered.
func TestGF2FullRank(t *testing.T) {
	const dim = 50
	b := NewGF2Basis()
	for k := 0; k < dim; k++ {
		if !b.Add(bitset.FromIndices(k)) {
			t.Fatalf("singleton %d rejected", k)
		}
	}
	if b.Rank() != dim {
		t.Fatalf("rank = %d, want %d", b.Rank(), dim)
	}
	// Any further row is dependent.
	row := bitset.FromIndices(3, 17, 42)
	if b.Add(row) {
		t.Fatal("row accepted after full rank")
	}
}

func TestBitsetSymmetricDifference(t *testing.T) {
	a := bitset.FromIndices(1, 2, 100)
	a.SymmetricDifferenceWith(bitset.FromIndices(2, 3, 200))
	want := bitset.FromIndices(1, 3, 100, 200)
	if !a.Equal(want) {
		t.Fatalf("xor = %v, want %v", a, want)
	}
	// XOR with self = empty.
	b := bitset.FromIndices(5, 6)
	b.SymmetricDifferenceWith(bitset.FromIndices(5, 6))
	if !b.IsEmpty() {
		t.Fatal("self-xor not empty")
	}
}
