package linalg

import "repro/internal/scratch"

// Workspace holds the scratch state of the solver variants that do not
// allocate per call: clone targets for the destructive elimination cores and
// reusable solution buffers. A Workspace may be reused across any number of
// solves of any sizes (buffers grow monotonically and are retained), but a
// single Workspace must not be used by two goroutines at once, and every
// returned slice aliases workspace storage — it is valid only until the next
// call on the same workspace.
//
// The allocating package-level solvers (SolveLU, LeastSquares, MinNormSolve)
// remain the safe default; the workspace variants run the identical
// arithmetic on reused memory, so their results are bit-identical.
type Workspace struct {
	m     Matrix    // clone/Gram scratch destroyed by the elimination cores
	x     []float64 // solution buffer returned to the caller
	y     []float64 // rhs scratch destroyed by the QR / Gram cores
	rdiag []float64 // R-diagonal scratch of the QR core
}

// SolveLU solves the square system A·x = b like the package-level SolveLU
// (A and b are not modified; identical arithmetic), returning a
// workspace-owned solution slice.
func (ws *Workspace) SolveLU(a *Matrix, b []float64) ([]float64, error) {
	if err := checkSolveLU(a, b); err != nil {
		return nil, err
	}
	ws.m.CopyFrom(a)
	ws.x = scratch.Grow(ws.x, a.Rows)
	copy(ws.x, b)
	if err := solveLUInPlace(&ws.m, ws.x); err != nil {
		return nil, err
	}
	return ws.x, nil
}

// LeastSquares solves min‖A·x − b‖₂ like the package-level LeastSquares
// (A and b are not modified; identical arithmetic), returning a
// workspace-owned solution slice.
func (ws *Workspace) LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if err := checkLeastSquares(a, b); err != nil {
		return nil, err
	}
	ws.m.CopyFrom(a)
	ws.y = scratch.Grow(ws.y, a.Rows)
	copy(ws.y, b)
	ws.rdiag = scratch.Grow(ws.rdiag, a.Cols)
	ws.x = scratch.Grow(ws.x, a.Cols)
	if err := leastSquaresInPlace(&ws.m, ws.y, ws.rdiag, ws.x); err != nil {
		return nil, err
	}
	return ws.x, nil
}

// MinNormSolve computes the minimum-L2-norm solution like the package-level
// MinNormSolve (A and b are not modified; identical arithmetic), returning a
// workspace-owned solution slice.
func (ws *Workspace) MinNormSolve(a *Matrix, b []float64) ([]float64, error) {
	if err := checkMinNorm(a, b); err != nil {
		return nil, err
	}
	ws.m.Reshape(a.Rows, a.Rows)
	ws.y = scratch.Grow(ws.y, a.Rows)
	if err := minNormGram(a, b, &ws.m, ws.y); err != nil {
		return nil, err
	}
	ws.x = scratch.Grow(ws.x, a.Cols)
	a.TransposeMulVecInto(ws.y, ws.x)
	return ws.x, nil
}
