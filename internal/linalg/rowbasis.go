package linalg

import "fmt"

// RowBasis incrementally maintains an orthonormal basis for the row space of
// the equations accepted so far. It is the workhorse of the Section-4
// equation selection: candidate equations are offered one at a time, and only
// those that increase the rank of the system are kept.
//
// Internally it runs modified Gram–Schmidt twice per candidate (the classic
// "twice is enough" re-orthogonalization), which keeps the basis numerically
// orthonormal even after thousands of insertions.
type RowBasis struct {
	dim   int
	tol   float64
	basis [][]float64 // orthonormal rows
}

// NewRowBasis creates a basis tracker for rows of the given dimension.
// tol is the relative tolerance below which a residual is considered zero;
// pass 0 for the default (1e-9).
func NewRowBasis(dim int, tol float64) *RowBasis {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: RowBasis dimension %d", dim))
	}
	if tol <= 0 {
		tol = 1e-9
	}
	return &RowBasis{dim: dim, tol: tol}
}

// Rank returns the number of linearly independent rows accepted so far.
func (rb *RowBasis) Rank() int { return len(rb.basis) }

// Full reports whether the basis spans the whole space.
func (rb *RowBasis) Full() bool { return len(rb.basis) == rb.dim }

// WouldIncreaseRank reports whether the row is linearly independent of the
// accepted rows, without modifying the basis.
func (rb *RowBasis) WouldIncreaseRank(row []float64) bool {
	_, ok := rb.residual(row)
	return ok
}

// Add offers a row. If it is linearly independent of the rows accepted so
// far, the basis is extended and Add returns true; otherwise the basis is
// unchanged and Add returns false.
func (rb *RowBasis) Add(row []float64) bool {
	r, ok := rb.residual(row)
	if !ok {
		return false
	}
	rb.basis = append(rb.basis, r)
	return true
}

// residual orthogonalizes row against the basis (twice) and, if the residual
// is numerically nonzero, returns it normalized.
func (rb *RowBasis) residual(row []float64) ([]float64, bool) {
	if len(row) != rb.dim {
		panic(fmt.Sprintf("linalg: RowBasis row has dim %d, want %d", len(row), rb.dim))
	}
	if rb.Full() {
		return nil, false
	}
	orig := Norm2(row)
	if orig == 0 {
		return nil, false
	}
	r := make([]float64, rb.dim)
	copy(r, row)
	for pass := 0; pass < 2; pass++ {
		for _, b := range rb.basis {
			d := Dot(r, b)
			if d == 0 {
				continue
			}
			for i := range r {
				r[i] -= d * b[i]
			}
		}
	}
	n := Norm2(r)
	if n <= rb.tol*orig {
		return nil, false
	}
	inv := 1 / n
	for i := range r {
		r[i] *= inv
	}
	return r, true
}

// Rank returns the numerical rank of a matrix, computed by feeding its rows
// through a RowBasis.
func Rank(m *Matrix) int {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	rb := NewRowBasis(m.Cols, 0)
	for r := 0; r < m.Rows; r++ {
		rb.Add(m.Row(r))
		if rb.Full() {
			break
		}
	}
	return rb.Rank()
}
