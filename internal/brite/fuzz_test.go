package brite

import (
	"bytes"
	"testing"
)

// FuzzParse fuzzes the BRITE flat-file reader (the cmd/topogen -family
// britefile input path). Arbitrary bytes must either fail with an error or
// yield a structurally sound File whose topology construction — when it
// succeeds — passes the Builder's full validation. No input may panic.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleFile))
	f.Add([]byte("Nodes: (2)\n0 1.5 2.5\n1 3 4\nEdges: (1)\n0 0 1\n"))
	f.Add([]byte("Nodes: (1)\n0\nEdges: (1)\n0 0 0\n"))
	f.Add([]byte("Edges: (1)\n0 0 1\n"))
	f.Add([]byte("0 1 2\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parse's structural guarantees.
		if len(file.Nodes) == 0 || len(file.Edges) == 0 {
			t.Fatalf("Parse returned an empty section without error: %d nodes, %d edges",
				len(file.Nodes), len(file.Edges))
		}
		ids := map[int]bool{}
		for _, n := range file.Nodes {
			if n.ID < 0 || ids[n.ID] {
				t.Fatalf("invalid or duplicate node id %d escaped Parse", n.ID)
			}
			ids[n.ID] = true
		}
		for _, e := range file.Edges {
			if !ids[e.From] || !ids[e.To] || e.From == e.To {
				t.Fatalf("edge %d (%d → %d) violates referential integrity", e.ID, e.From, e.To)
			}
		}
		// Topology construction must never panic; its own errors are fine
		// (e.g. a graph too disconnected to route paths).
		if top, err := FileTopology(file, FileTopologyConfig{Paths: 3, Seed: 1}); err == nil {
			if top.NumPaths() == 0 {
				t.Fatal("FileTopology succeeded with zero paths")
			}
		}
	})
}
