// Package brite generates paired AS-level / router-level topologies in the
// style of the BRITE topology generator used by the paper's evaluation
// (Section 5, "Brite topologies"). The AS-level graph is grown by
// Barabási–Albert preferential attachment (BRITE's BA model), and each
// directed AS-level link is backed by a sequence of router-level links: a
// shared internal link of the source AS, a dedicated inter-AS link, and a
// dedicated internal link of the destination AS.
//
// Two AS-level links are correlated exactly when their backings share a
// router-level link, reproducing the paper's construction: "two links in the
// AS-level topology are correlated if and only if they share at least one
// link in the underlying router-level topology". Each AS-level link is
// anchored at one of its endpoint ASes (chosen at random) and draws its
// shared internal router link from that AS's pool; the other endpoint
// contributes a dedicated internal link. Anchoring keeps every correlation
// set inside a single administrative domain (the Section-3.3 scenario) and
// bounds its size — unconstrained two-sided sharing would percolate into one
// giant correlation component — while still letting a measurement path that
// enters and leaves an AS traverse two correlated links, which is precisely
// the situation that separates correlation-aware tomography from the
// independence baseline.
package brite

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parameterizes topology generation.
type Config struct {
	// ASes is the number of AS-level nodes (≥ 3).
	ASes int
	// EdgesPerAS is the Barabási–Albert attachment parameter m (≥ 1): each
	// new AS connects to m existing ASes chosen preferentially by degree.
	EdgesPerAS int
	// GroupSize bounds how many egress AS-level links of one AS share one of
	// its internal router links (drawn uniformly from [Min, Max] per group,
	// defaults 2..5). Groups are exactly the correlation sets of the
	// generated topology.
	GroupSize [2]int
	// Paths is the number of end-to-end measurement paths to generate.
	Paths int
	// MaxPathLen caps the AS-level hop count of generated paths (0 ⇒ 12).
	MaxPathLen int
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) fill() error {
	if c.ASes < 3 {
		return fmt.Errorf("brite: ASes = %d, want ≥ 3", c.ASes)
	}
	if c.EdgesPerAS < 1 {
		return fmt.Errorf("brite: EdgesPerAS = %d, want ≥ 1", c.EdgesPerAS)
	}
	if c.GroupSize[0] <= 0 {
		c.GroupSize[0] = 2
	}
	if c.GroupSize[1] < c.GroupSize[0] {
		c.GroupSize[1] = c.GroupSize[0] + 3
	}
	if c.Paths < 1 {
		return fmt.Errorf("brite: Paths = %d, want ≥ 1", c.Paths)
	}
	if c.MaxPathLen <= 0 {
		c.MaxPathLen = 12
	}
	return nil
}

// Network is a generated AS-level measurement topology together with its
// router-level backing structure.
type Network struct {
	// Topology is the AS-level graph with measurement paths and the derived
	// correlation sets (links sharing router-level links, transitively).
	Topology *topology.Topology
	// Backing[k] lists the router-level link indices underlying AS-level
	// link k; indices live in [0, NumRouterLinks).
	Backing [][]int
	// NumRouterLinks is the size of the router-level link namespace.
	NumRouterLinks int
	// ASOfLink[k] is the source AS of link k (diagnostics).
	ASOfLink []int
	// InternalOf[r] is the AS owning router link r, or -1 for inter-AS links.
	InternalOf []int
}

// Generate builds the paired topologies.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- AS-level undirected graph via Barabási–Albert attachment. ---
	type edge struct{ a, b int }
	var edges []edge
	adj := make(map[int]map[int]bool)
	addEdge := func(a, b int) {
		if a == b || adj[a][b] {
			return
		}
		if adj[a] == nil {
			adj[a] = map[int]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[int]bool{}
		}
		adj[a][b], adj[b][a] = true, true
		edges = append(edges, edge{a, b})
	}
	// Seed clique of size m+1 keeps early attachment well defined.
	seedN := cfg.EdgesPerAS + 1
	if seedN > cfg.ASes {
		seedN = cfg.ASes
	}
	for a := 0; a < seedN; a++ {
		for b := a + 1; b < seedN; b++ {
			addEdge(a, b)
		}
	}
	// Preferential attachment: degree-weighted sampling via the edge list
	// (each endpoint appearance is one "degree token").
	for v := seedN; v < cfg.ASes; v++ {
		attached := map[int]bool{}
		for len(attached) < cfg.EdgesPerAS {
			var target int
			if len(edges) == 0 {
				target = rng.Intn(v)
			} else {
				e := edges[rng.Intn(len(edges))]
				if rng.Intn(2) == 0 {
					target = e.a
				} else {
					target = e.b
				}
			}
			if target == v || attached[target] {
				// Fall back to uniform to guarantee progress in tiny graphs.
				target = rng.Intn(v)
				if target == v || attached[target] {
					continue
				}
			}
			attached[target] = true
			addEdge(v, target)
		}
	}

	// --- Directed AS-level links (backings are assigned after path
	// generation, over the links that are actually used). ---
	type dlink struct{ src, dst int }
	var dlinks []dlink
	linkIndex := map[[2]int]int{} // (srcAS,dstAS) -> dlinks index
	for _, e := range edges {
		for _, dir := range [][2]int{{e.a, e.b}, {e.b, e.a}} {
			linkIndex[[2]int{dir[0], dir[1]}] = len(dlinks)
			dlinks = append(dlinks, dlink{src: dir[0], dst: dir[1]})
		}
	}

	// --- Paths: shortest AS-level routes between random distinct AS pairs. ---
	// BFS on the undirected adjacency; a path is the sequence of directed
	// links along the route.
	neighbors := make([][]int, cfg.ASes)
	for a, m := range adj {
		for b := range m {
			neighbors[a] = append(neighbors[a], b)
		}
		sort.Ints(neighbors[a])
	}
	bfsPath := func(src, dst int) []int {
		if src == dst {
			return nil
		}
		prev := make([]int, cfg.ASes)
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range neighbors[v] {
				if prev[w] == -1 {
					prev[w] = v
					if w == dst {
						var nodes []int
						for x := dst; x != src; x = prev[x] {
							nodes = append(nodes, x)
						}
						nodes = append(nodes, src)
						for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
							nodes[i], nodes[j] = nodes[j], nodes[i]
						}
						return nodes
					}
					queue = append(queue, w)
				}
			}
		}
		return nil
	}

	type pathSpec struct{ links []int } // dlinks indices
	var paths []pathSpec
	seenPath := map[string]bool{}
	attempts := 0
	for len(paths) < cfg.Paths {
		attempts++
		if attempts > 200*cfg.Paths {
			return nil, fmt.Errorf("brite: could not generate %d distinct paths (got %d); increase ASes", cfg.Paths, len(paths))
		}
		src, dst := rng.Intn(cfg.ASes), rng.Intn(cfg.ASes)
		if src == dst {
			continue
		}
		nodes := bfsPath(src, dst)
		if nodes == nil || len(nodes)-1 > cfg.MaxPathLen {
			continue
		}
		var links []int
		key := ""
		for i := 0; i+1 < len(nodes); i++ {
			li := linkIndex[[2]int{nodes[i], nodes[i+1]}]
			links = append(links, li)
			key += fmt.Sprintf("%d,", li)
		}
		if seenPath[key] {
			continue
		}
		seenPath[key] = true
		paths = append(paths, pathSpec{links: links})
	}

	// --- Keep only links used by paths; rebuild compactly. ---
	used := map[int]bool{}
	for _, p := range paths {
		for _, li := range p.links {
			used[li] = true
		}
	}
	order := make([]int, 0, len(used))
	for li := range used {
		order = append(order, li)
	}
	sort.Ints(order)

	// --- Router-level backings over the used links. ---
	// Each used link is anchored at one endpoint AS and partitioned, per
	// anchor AS, into groups of bounded size; each group shares one internal
	// router link of that AS. Every link additionally gets a dedicated
	// inter-AS link and a dedicated internal link at its other endpoint.
	var internalOf []int
	nextRouter := 0
	newRouterLink := func(as int) int {
		id := nextRouter
		nextRouter++
		internalOf = append(internalOf, as)
		return id
	}
	anchorOf := map[int]int{}           // dlink index -> anchor AS
	anchored := make([][]int, cfg.ASes) // AS -> used dlink indices anchored there
	for _, li := range order {
		anchor := dlinks[li].src
		if rng.Intn(2) == 1 {
			anchor = dlinks[li].dst
		}
		anchorOf[li] = anchor
		anchored[anchor] = append(anchored[anchor], li)
	}
	// Group the links anchored at each AS. Grouping is path-aligned: pairs
	// of links that appear consecutively on a measurement path (entering and
	// leaving the anchor AS) are seeded into the same group first — this is
	// the Figure-2(a) situation, where every path through a LAN/domain
	// traverses two of its correlated links — and the remaining anchored
	// links fill the groups up to the size cap.
	consecutive := map[int][][2]int{} // anchor AS -> consecutive (in,out) dlink pairs
	for _, p := range paths {
		for i := 0; i+1 < len(p.links); i++ {
			a, b := p.links[i], p.links[i+1]
			mid := dlinks[a].dst
			if anchorOf[a] == mid && anchorOf[b] == mid {
				consecutive[mid] = append(consecutive[mid], [2]int{a, b})
			}
		}
	}
	sharedOf := map[int]int{} // dlink index -> shared internal router link
	for as := 0; as < cfg.ASes; as++ {
		groupOf := map[int]int{} // dlink -> local group id
		var groups [][]int
		sizeCap := func() int {
			size := cfg.GroupSize[0]
			if d := cfg.GroupSize[1] - cfg.GroupSize[0]; d > 0 {
				size += rng.Intn(d + 1)
			}
			return size
		}
		caps := []int{}
		newGroup := func(members ...int) {
			id := len(groups)
			groups = append(groups, members)
			caps = append(caps, sizeCap())
			for _, m := range members {
				groupOf[m] = id
			}
		}
		// Seed with consecutive path pairs.
		pairsHere := append([][2]int{}, consecutive[as]...)
		rng.Shuffle(len(pairsHere), func(i, j int) { pairsHere[i], pairsHere[j] = pairsHere[j], pairsHere[i] })
		for _, pr := range pairsHere {
			ga, okA := groupOf[pr[0]]
			gb, okB := groupOf[pr[1]]
			switch {
			case !okA && !okB:
				newGroup(pr[0], pr[1])
			case okA && !okB:
				if len(groups[ga]) < caps[ga] {
					groups[ga] = append(groups[ga], pr[1])
					groupOf[pr[1]] = ga
				} else {
					newGroup(pr[1])
				}
			case !okA && okB:
				if len(groups[gb]) < caps[gb] {
					groups[gb] = append(groups[gb], pr[0])
					groupOf[pr[0]] = gb
				} else {
					newGroup(pr[0])
				}
			}
		}
		// Remaining anchored links fill existing groups, then new ones.
		rest := append([]int{}, anchored[as]...)
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		for _, li := range rest {
			if _, ok := groupOf[li]; ok {
				continue
			}
			placed := false
			for gi := range groups {
				if len(groups[gi]) < caps[gi] {
					groups[gi] = append(groups[gi], li)
					groupOf[li] = gi
					placed = true
					break
				}
			}
			if !placed {
				newGroup(li)
			}
		}
		for _, g := range groups {
			r := newRouterLink(as)
			for _, li := range g {
				sharedOf[li] = r
			}
		}
	}

	remap := map[int]topology.LinkID{}
	b := topology.NewBuilder()
	b.AddNodes(cfg.ASes)
	net := &Network{}
	for _, li := range order {
		dl := dlinks[li]
		id := b.AddLink(topology.NodeID(dl.src), topology.NodeID(dl.dst),
			fmt.Sprintf("as%d-as%d", dl.src, dl.dst))
		remap[li] = id
		inter := newRouterLink(-1)
		internalOf[inter] = -1
		other := dl.src
		if anchorOf[li] == dl.src {
			other = dl.dst
		}
		otherInternal := newRouterLink(other)
		net.Backing = append(net.Backing, []int{sharedOf[li], inter, otherInternal})
		net.ASOfLink = append(net.ASOfLink, anchorOf[li])
	}
	net.NumRouterLinks = nextRouter
	net.InternalOf = internalOf
	for pi, p := range paths {
		links := make([]topology.LinkID, len(p.links))
		for i, li := range p.links {
			links[i] = remap[li]
		}
		b.AddPath(fmt.Sprintf("P%d", pi), links...)
	}
	// Correlation sets: connected components of the "shares a router link"
	// relation over the kept links.
	for _, group := range shareGroups(net.Backing) {
		if len(group) > 1 {
			ids := make([]topology.LinkID, len(group))
			for i, k := range group {
				ids[i] = topology.LinkID(k)
			}
			b.Correlate(ids...)
		}
	}
	top, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("brite: generated topology invalid: %w", err)
	}
	net.Topology = top
	return net, nil
}

// shareGroups unions link indices that share a backing router link.
func shareGroups(backing [][]int) [][]int {
	parent := make([]int, len(backing))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[int]int{}
	for k, b := range backing {
		for _, r := range b {
			if o, ok := owner[r]; ok {
				ra, rb := find(o), find(k)
				if ra != rb {
					parent[ra] = rb
				}
			} else {
				owner[r] = k
			}
		}
	}
	groups := map[int][]int{}
	for k := range backing {
		groups[find(k)] = append(groups[find(k)], k)
	}
	var out [][]int
	for k := range backing {
		if g, ok := groups[find(k)]; ok && g[0] == k {
			out = append(out, g)
			delete(groups, find(k))
		}
	}
	return out
}

// SharedRouterIndex returns, for each router-level link, the AS-level links
// whose backing contains it — the inverted index scenario builders use to
// pick clusters of correlated links. The index is a slice keyed by router
// link (not a map) so that iterating it is deterministic: scenario
// construction must be a pure function of its seed, or parallel experiment
// runs could not be reproduced.
func (n *Network) SharedRouterIndex() [][]int {
	idx := make([][]int, n.NumRouterLinks)
	for k, b := range n.Backing {
		for _, r := range b {
			idx[r] = append(idx[r], k)
		}
	}
	return idx
}
