package brite

import (
	"testing"

	"repro/internal/topology"
)

func defaultCfg() Config {
	return Config{ASes: 30, EdgesPerAS: 2, Paths: 60, Seed: 1}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{ASes: 1, EdgesPerAS: 1, Paths: 1}); err == nil {
		t.Fatal("tiny ASes accepted")
	}
	if _, err := Generate(Config{ASes: 10, EdgesPerAS: 0, Paths: 1}); err == nil {
		t.Fatal("zero EdgesPerAS accepted")
	}
	if _, err := Generate(Config{ASes: 10, EdgesPerAS: 1, Paths: 0}); err == nil {
		t.Fatal("zero paths accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	if top.NumPaths() != 60 {
		t.Fatalf("paths = %d, want 60", top.NumPaths())
	}
	if top.NumLinks() == 0 || top.NumLinks() != len(net.Backing) {
		t.Fatalf("links = %d, backings = %d", top.NumLinks(), len(net.Backing))
	}
	// Every backing references valid router links and has the
	// internal–inter–internal structure (3 router links).
	for k, b := range net.Backing {
		if len(b) != 3 {
			t.Fatalf("link %d backing %v, want 3 router links", k, b)
		}
		for _, r := range b {
			if r < 0 || r >= net.NumRouterLinks {
				t.Fatalf("link %d references router link %d outside [0,%d)", k, r, net.NumRouterLinks)
			}
		}
		if net.InternalOf[b[1]] != -1 {
			t.Fatalf("link %d middle backing %d is not an inter-AS link", k, b[1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology.NumLinks() != b.Topology.NumLinks() || a.Topology.NumPaths() != b.Topology.NumPaths() {
		t.Fatal("same seed produced different topologies")
	}
	for i := range a.Backing {
		for j := range a.Backing[i] {
			if a.Backing[i][j] != b.Backing[i][j] {
				t.Fatalf("backing differs at link %d", i)
			}
		}
	}
	c, err := Generate(Config{ASes: 30, EdgesPerAS: 2, Paths: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Topology.NumLinks() == c.Topology.NumLinks()
	if same {
		diff := false
		for i := 0; i < a.Topology.NumLinks() && !diff; i++ {
			la, lc := a.Topology.Link(topology.LinkID(i)), c.Topology.Link(topology.LinkID(i))
			diff = la.Src != lc.Src || la.Dst != lc.Dst
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

// Correlation-set semantics: links in the same correlation set must be
// connected through shared router links; links in different sets must share
// no router link.
func TestCorrelationSetsMatchSharing(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	share := func(a, b int) bool {
		for _, ra := range net.Backing[a] {
			for _, rb := range net.Backing[b] {
				if ra == rb {
					return true
				}
			}
		}
		return false
	}
	for a := 0; a < top.NumLinks(); a++ {
		for b := a + 1; b < top.NumLinks(); b++ {
			if share(a, b) && top.SetOf(topology.LinkID(a)) != top.SetOf(topology.LinkID(b)) {
				t.Fatalf("links %d,%d share a router link but are in different correlation sets", a, b)
			}
			if !share(a, b) && top.SetOf(topology.LinkID(a)) == top.SetOf(topology.LinkID(b)) {
				// Same set without direct sharing is fine (transitive
				// closure) — but there must exist a connecting chain; spot
				// check via set size > 2 is enough here, so skip.
				_ = b
			}
		}
	}
	// There must be real correlation in the generated network.
	multi := 0
	for p := 0; p < top.NumSets(); p++ {
		if top.CorrelationSet(p).Len() > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-link correlation sets generated")
	}
}

func TestSharedRouterIndex(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	idx := net.SharedRouterIndex()
	// Index must invert Backing exactly.
	for k, b := range net.Backing {
		for _, r := range b {
			found := false
			for _, kk := range idx[r] {
				if kk == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d missing from index of router link %d", k, r)
			}
		}
	}
	// Some router link must back multiple AS links (correlation exists).
	shared := 0
	for _, links := range idx {
		if len(links) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no shared router links")
	}
}

func TestGenerateLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net, err := Generate(Config{ASes: 120, EdgesPerAS: 2, Paths: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if net.Topology.NumPaths() != 400 {
		t.Fatalf("paths = %d", net.Topology.NumPaths())
	}
	if net.Topology.NumLinks() < 100 {
		t.Fatalf("links = %d, expected a few hundred", net.Topology.NumLinks())
	}
}
