package brite

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// sampleFile is a small BRITE flat file in the common dialect.
const sampleFile = `Topology: ( 5 Nodes, 6 Edges )
Model ( 2 ): 5 1000 100 1 2 0.55 -1 -1

Nodes: ( 5 )
0	10.0	20.0	2	2	0	AS_NODE
1	30.0	40.0	3	3	0	AS_NODE
2	50.0	60.0	2	2	0	AS_NODE
3	70.0	80.0	3	3	0	AS_NODE
4	90.0	10.0	2	2	0	AS_NODE

Edges: ( 6 )
0	0	1	11.0	0.1	10.0	0	0	E_AS	U
1	1	2	12.0	0.1	10.0	0	0	E_AS	U
2	2	3	13.0	0.1	10.0	0	0	E_AS	U
3	3	4	14.0	0.1	10.0	0	0	E_AS	U
4	4	0	15.0	0.1	10.0	0	0	E_AS	U
5	1	3	16.0	0.1	10.0	0	0	E_AS	U
`

func TestParseSampleFile(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes) != 5 || len(f.Edges) != 6 {
		t.Fatalf("parsed %d nodes, %d edges, want 5, 6", len(f.Nodes), len(f.Edges))
	}
	if f.Nodes[1].X != 30 || f.Nodes[1].Y != 40 {
		t.Fatalf("node 1 coordinates (%v, %v), want (30, 40)", f.Nodes[1].X, f.Nodes[1].Y)
	}
	if f.Edges[5].From != 1 || f.Edges[5].To != 3 {
		t.Fatalf("edge 5 endpoints (%d, %d), want (1, 3)", f.Edges[5].From, f.Edges[5].To)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, input, errPart string
	}{
		{"empty", "", "no nodes"},
		{"no edges", "Nodes: (1)\n0 1 2\n", "no edges"},
		{"row outside section", "0 1 2\n", "outside any"},
		{"bad node id", "Nodes: (1)\nxyz 1 2\n", "bad node id"},
		{"negative node id", "Nodes: (1)\n-4 1 2\n", "bad node id"},
		{"duplicate node", "Nodes: (2)\n0 1 2\n0 3 4\n", "duplicate node"},
		{"bad coords", "Nodes: (1)\n0 a b\n", "coordinates"},
		{"short edge row", "Nodes: (1)\n0\nEdges: (1)\n0 1\n", "needs id, from, to"},
		{"unknown endpoint", "Nodes: (2)\n0\n1\nEdges: (1)\n0 0 7\n", "unknown node"},
		{"self loop", "Nodes: (1)\n0\nEdges: (1)\n0 0 0\n", "self-loop"},
		{"duplicate edge id", "Nodes: (3)\n0\n1\n2\nEdges: (2)\n0 0 1\n0 1 2\n", "duplicate edge"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
		} else if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

func TestFileTopology(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	top, err := FileTopology(f, FileTopologyConfig{Paths: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if top.NumPaths() != 20 {
		t.Fatalf("built %d paths, want 20", top.NumPaths())
	}
	if top.NumNodes() != 5 {
		t.Fatalf("topology has %d nodes, want 5", top.NumNodes())
	}
	// Determinism: same seed, same topology shape.
	again, err := FileTopology(f, FileTopologyConfig{Paths: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if again.NumLinks() != top.NumLinks() || again.NumSets() != top.NumSets() {
		t.Fatalf("same-seed rebuild differs: %d/%d links, %d/%d sets",
			again.NumLinks(), top.NumLinks(), again.NumSets(), top.NumSets())
	}
	// Egress correlation: some node with ≥2 outgoing links must produce a
	// multi-link correlation set.
	multi := 0
	for p := 0; p < top.NumSets(); p++ {
		if top.CorrelationSet(p).Len() >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-link correlation sets — egress grouping did not happen")
	}
	// Every correlation set's links share their source node.
	for p := 0; p < top.NumSets(); p++ {
		var src topology.NodeID = -1
		ok := true
		top.CorrelationSet(p).ForEach(func(k int) bool {
			l := top.Link(topology.LinkID(k))
			if src == -1 {
				src = l.Src
			} else if l.Src != src {
				ok = false
			}
			return true
		})
		if !ok {
			t.Fatalf("correlation set %d mixes source nodes", p)
		}
	}

	if _, err := FileTopology(f, FileTopologyConfig{Paths: 0}); err == nil {
		t.Fatal("Paths = 0 accepted")
	}
}
