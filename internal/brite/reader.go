package brite

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// File is a parsed BRITE flat-file topology: the text format the original
// BRITE generator (and its many re-implementations) writes, consisting of a
// "Nodes:" section and an "Edges:" section. Parse validates structure and
// referential integrity; FileTopology turns a File into a measurement
// topology for the tomography pipeline.
type File struct {
	// Nodes are the declared nodes, in file order.
	Nodes []FileNode
	// Edges are the declared (undirected) edges, in file order.
	Edges []FileEdge
}

// FileNode is one node row of a BRITE file.
type FileNode struct {
	// ID is the node's identifier as written in the file (not necessarily
	// dense).
	ID int
	// X, Y are the plane coordinates (0 when the row omits them).
	X, Y float64
}

// FileEdge is one edge row of a BRITE file.
type FileEdge struct {
	// ID is the edge's identifier as written in the file.
	ID int
	// From, To are node IDs.
	From, To int
}

// parse caps: a fuzzer (or a corrupted file) must not be able to demand
// unbounded memory through a declared section size.
const maxFileSection = 1 << 20

// Parse reads a BRITE flat-file topology. It accepts the common dialect:
// optional header lines ("Topology:", "Model ..."), a "Nodes: (N)" section
// with one whitespace-separated row per node (id x y ...), and an
// "Edges: (M)" section (id from to ...). Unknown trailing columns are
// ignored; structural problems — duplicate IDs, edges referencing unknown
// nodes, self-loops, malformed numbers — are errors.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	f := &File{}
	seenNodes := map[int]bool{}
	seenEdges := map[int]bool{}
	section := "" // "", "nodes", "edges"
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "nodes:"):
			section = "nodes"
			continue
		case strings.HasPrefix(lower, "edges:"):
			section = "edges"
			continue
		case strings.HasPrefix(lower, "topology:") || strings.HasPrefix(lower, "model"):
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "nodes":
			if len(f.Nodes) >= maxFileSection {
				return nil, fmt.Errorf("brite: line %d: more than %d nodes", lineNo, maxFileSection)
			}
			if len(fields) < 1 {
				return nil, fmt.Errorf("brite: line %d: empty node row", lineNo)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("brite: line %d: bad node id %q", lineNo, fields[0])
			}
			if seenNodes[id] {
				return nil, fmt.Errorf("brite: line %d: duplicate node id %d", lineNo, id)
			}
			seenNodes[id] = true
			n := FileNode{ID: id}
			if len(fields) >= 3 {
				x, errX := strconv.ParseFloat(fields[1], 64)
				y, errY := strconv.ParseFloat(fields[2], 64)
				if errX != nil || errY != nil {
					return nil, fmt.Errorf("brite: line %d: bad node coordinates %q %q", lineNo, fields[1], fields[2])
				}
				n.X, n.Y = x, y
			}
			f.Nodes = append(f.Nodes, n)
		case "edges":
			if len(f.Edges) >= maxFileSection {
				return nil, fmt.Errorf("brite: line %d: more than %d edges", lineNo, maxFileSection)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("brite: line %d: edge row needs id, from, to", lineNo)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("brite: line %d: bad edge id %q", lineNo, fields[0])
			}
			if seenEdges[id] {
				return nil, fmt.Errorf("brite: line %d: duplicate edge id %d", lineNo, id)
			}
			seenEdges[id] = true
			from, errF := strconv.Atoi(fields[1])
			to, errT := strconv.Atoi(fields[2])
			if errF != nil || errT != nil {
				return nil, fmt.Errorf("brite: line %d: bad edge endpoints %q %q", lineNo, fields[1], fields[2])
			}
			if !seenNodes[from] || !seenNodes[to] {
				return nil, fmt.Errorf("brite: line %d: edge %d references unknown node (%d → %d)", lineNo, id, from, to)
			}
			if from == to {
				return nil, fmt.Errorf("brite: line %d: edge %d is a self-loop on node %d", lineNo, id, from)
			}
			f.Edges = append(f.Edges, FileEdge{ID: id, From: from, To: to})
		default:
			return nil, fmt.Errorf("brite: line %d: row %q outside any Nodes/Edges section", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("brite: reading: %w", err)
	}
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("brite: file declares no nodes")
	}
	if len(f.Edges) == 0 {
		return nil, fmt.Errorf("brite: file declares no edges")
	}
	return f, nil
}

// FileTopologyConfig parameterizes FileTopology.
type FileTopologyConfig struct {
	// Paths is the number of measurement paths to generate (≥ 1).
	Paths int
	// MaxPathLen caps path hop count (0 ⇒ 12).
	MaxPathLen int
	// Seed drives endpoint selection.
	Seed int64
}

// FileTopology builds a measurement topology from a parsed BRITE file:
// measurement paths are shortest routes between randomly chosen node pairs,
// directed links are materialized per traversal direction as paths need
// them, and all egress links of one node form a correlation set — links
// leaving a node share that node's physical infrastructure, the flat-file
// analogue of Generate's router-level backing.
func FileTopology(f *File, cfg FileTopologyConfig) (*topology.Topology, error) {
	if cfg.Paths < 1 {
		return nil, fmt.Errorf("brite: Paths = %d, want ≥ 1", cfg.Paths)
	}
	maxLen := cfg.MaxPathLen
	if maxLen <= 0 {
		maxLen = 12
	}

	// Dense node index over (possibly sparse) file IDs, in file order.
	idx := make(map[int]int, len(f.Nodes))
	for i, n := range f.Nodes {
		idx[n.ID] = i
	}
	adj := make([][]int, len(f.Nodes))
	for _, e := range f.Edges {
		a, b := idx[e.From], idx[e.To]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// Deterministic neighbor order regardless of edge-row order.
	for _, ns := range adj {
		sort.Ints(ns)
	}

	b := topology.NewBuilder()
	b.AddNodes(len(f.Nodes))
	rng := rand.New(rand.NewSource(cfg.Seed))
	type dirEdge struct{ from, to int }
	links := map[dirEdge]topology.LinkID{}
	link := func(from, to int) topology.LinkID {
		if id, ok := links[dirEdge{from, to}]; ok {
			return id
		}
		id := b.AddLink(topology.NodeID(from), topology.NodeID(to),
			fmt.Sprintf("%d->%d", f.Nodes[from].ID, f.Nodes[to].ID))
		links[dirEdge{from, to}] = id
		return id
	}

	// BFS shortest path, bounded by maxLen hops.
	shortest := func(src, dst int) []int {
		if src == dst {
			return nil
		}
		prev := make([]int, len(adj))
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		frontier := []int{src}
		for depth := 0; depth < maxLen && len(frontier) > 0; depth++ {
			var next []int
			for _, v := range frontier {
				for _, w := range adj[v] {
					if prev[w] != -1 {
						continue
					}
					prev[w] = v
					if w == dst {
						var nodes []int
						for x := dst; x != src; x = prev[x] {
							nodes = append(nodes, x)
						}
						nodes = append(nodes, src)
						for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
							nodes[i], nodes[j] = nodes[j], nodes[i]
						}
						return nodes
					}
					next = append(next, w)
				}
			}
			frontier = next
		}
		return nil
	}

	built := 0
	for attempt := 0; built < cfg.Paths && attempt < 50*cfg.Paths; attempt++ {
		src := rng.Intn(len(f.Nodes))
		dst := rng.Intn(len(f.Nodes))
		nodes := shortest(src, dst)
		if len(nodes) < 2 {
			continue
		}
		ids := make([]topology.LinkID, 0, len(nodes)-1)
		for i := 0; i+1 < len(nodes); i++ {
			ids = append(ids, link(nodes[i], nodes[i+1]))
		}
		b.AddPath(fmt.Sprintf("p%d", built), ids...)
		built++
	}
	if built == 0 {
		return nil, fmt.Errorf("brite: could not route any measurement path (graph too disconnected?)")
	}

	// Correlation sets: egress links of one node share its infrastructure.
	egress := map[int][]topology.LinkID{}
	for de, id := range links {
		egress[de.from] = append(egress[de.from], id)
	}
	var froms []int
	for from := range egress {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	for _, from := range froms {
		ids := egress[from]
		if len(ids) < 2 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.Correlate(ids...)
	}
	return b.Build()
}
