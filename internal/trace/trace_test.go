package trace

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/topology"
)

func defaultCfg() Config {
	return Config{Elements: 80, HiddenFrac: 0.3, VantagePoints: 14, Paths: 60, Seed: 1}
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(Config{Elements: 2, VantagePoints: 2, Paths: 1}); err == nil {
		t.Fatal("tiny network accepted")
	}
	if _, err := Discover(Config{Elements: 20, VantagePoints: 1, Paths: 1}); err == nil {
		t.Fatal("single vantage point accepted")
	}
	if _, err := Discover(Config{Elements: 20, VantagePoints: 4, Paths: 0}); err == nil {
		t.Fatal("zero paths accepted")
	}
}

func TestDiscoverShape(t *testing.T) {
	net, err := Discover(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Logical
	if top.NumPaths() != 60 {
		t.Fatalf("paths = %d, want 60", top.NumPaths())
	}
	if top.NumLinks() != len(net.Backing) || top.NumLinks() != len(net.VisibleHops) {
		t.Fatalf("inconsistent link bookkeeping: %d links, %d backings, %d hops",
			top.NumLinks(), len(net.Backing), len(net.VisibleHops))
	}
	// Logical endpoints must be visible elements; hidden elements never
	// appear as logical nodes with adjacent links.
	for _, l := range top.Links() {
		if net.Hidden[l.Src] || net.Hidden[l.Dst] {
			t.Fatalf("logical link %q touches a hidden element", l.Name)
		}
	}
	// Every backing is non-empty and references valid physical links.
	for k, b := range net.Backing {
		if len(b) == 0 {
			t.Fatalf("logical link %d has no physical backing", k)
		}
		for _, p := range b {
			if p < 0 || p >= net.NumPhysicalLinks {
				t.Fatalf("logical link %d references physical link %d outside [0,%d)",
					k, p, net.NumPhysicalLinks)
			}
		}
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	a, err := Discover(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Logical.NumLinks() != b.Logical.NumLinks() {
		t.Fatal("same seed produced different discoveries")
	}
	for i := range a.Backing {
		if len(a.Backing[i]) != len(b.Backing[i]) {
			t.Fatal("same seed produced different backings")
		}
	}
}

// The discovery invariant of Figure 2: logical links that share a physical
// link must land in the same correlation set, and multi-link sets exist when
// elements are hidden.
func TestCorrelationMatchesPhysicalSharing(t *testing.T) {
	net, err := Discover(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Logical
	share := func(a, b int) bool {
		for _, ra := range net.Backing[a] {
			for _, rb := range net.Backing[b] {
				if ra == rb {
					return true
				}
			}
		}
		return false
	}
	multi := 0
	for a := 0; a < top.NumLinks(); a++ {
		for b := a + 1; b < top.NumLinks(); b++ {
			if share(a, b) {
				if top.SetOf(topology.LinkID(a)) != top.SetOf(topology.LinkID(b)) {
					t.Fatalf("links %d and %d share a physical link but are uncorrelated", a, b)
				}
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("no physical sharing discovered — hidden elements had no effect")
	}
}

// A hidden element with multiple logical links through it produces logical
// links whose backings overlap — the Figure 2(a) situation. The discovered
// network must plug directly into a RouterBacked congestion model.
func TestDiscoveredNetworkDrivesRouterBackedModel(t *testing.T) {
	net, err := Discover(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, net.NumPhysicalLinks)
	for i := range probs {
		probs[i] = 0.02
	}
	model, err := congestion.NewRouterBacked(net.Backing, probs)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumLinks() != net.Logical.NumLinks() {
		t.Fatalf("model covers %d links, topology has %d", model.NumLinks(), net.Logical.NumLinks())
	}
	// Longer backings ⇒ higher marginals; all marginals in (0, 1).
	for k := 0; k < model.NumLinks(); k++ {
		m := model.Marginal(topology.LinkID(k))
		if m <= 0 || m >= 1 {
			t.Fatalf("marginal of link %d = %v", k, m)
		}
	}
}

func TestHiddenFractionRespected(t *testing.T) {
	cfg := defaultCfg()
	net, err := Discover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hidden := 0
	for _, h := range net.Hidden {
		if h {
			hidden++
		}
	}
	want := int(cfg.HiddenFrac * float64(cfg.Elements))
	if hidden != want {
		t.Fatalf("hidden elements = %d, want %d", hidden, want)
	}
}

// With no hidden elements... HiddenFrac 0 falls back to the default, so use
// a tiny value instead: discovery should produce mostly single-physical-link
// logical links.
func TestLowHiddenFraction(t *testing.T) {
	cfg := defaultCfg()
	cfg.HiddenFrac = 0.01
	net, err := Discover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := 0
	for _, b := range net.Backing {
		if len(b) == 1 {
			single++
		}
	}
	if single < net.Logical.NumLinks()/2 {
		t.Fatalf("only %d of %d logical links are single-physical with 1%% hidden",
			single, net.Logical.NumLinks())
	}
}
