// Package trace simulates traceroute-based topology discovery over a
// physical network — the exact construction behind the paper's Figure 2 and
// its two motivating scenarios. Some physical elements (Ethernet switches,
// MPLS routers) do not respond to traceroute; discovery therefore produces a
// *logical* topology whose nodes are the responding elements and whose links
// abstract sequences of physical links through the undiscovered ones.
//
// Two logical links are correlated exactly when they share a physical link —
// the situation the operator cannot see but can anticipate by grouping links
// that cross the same hidden region into one correlation set. The discovered
// network carries the logical→physical backing, so a RouterBacked congestion
// model (probabilities on physical links, logical link congested iff any
// underlying physical link is) gives ground truth with exact marginals and
// joints.
package trace

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parameterizes physical-network generation and discovery.
type Config struct {
	// Elements is the number of physical elements (≥ 8).
	Elements int
	// HiddenFrac is the fraction of elements that do not respond to
	// traceroute (switches / MPLS gear), default 0.3. Vantage points are
	// always visible.
	HiddenFrac float64
	// VantagePoints is the number of measurement hosts (≥ 2).
	VantagePoints int
	// Paths is the number of logical measurement paths to produce.
	Paths int
	// ExtraEdgeFrac adds this fraction of |Elements| random chords on top of
	// the connectivity backbone (default 0.5).
	ExtraEdgeFrac float64
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) fill() error {
	if c.Elements < 8 {
		return fmt.Errorf("trace: Elements = %d, want ≥ 8", c.Elements)
	}
	if c.HiddenFrac < 0 || c.HiddenFrac >= 1 {
		c.HiddenFrac = 0.3
	} else if c.HiddenFrac == 0 {
		c.HiddenFrac = 0.3
	}
	if c.VantagePoints < 2 {
		return fmt.Errorf("trace: VantagePoints = %d, want ≥ 2", c.VantagePoints)
	}
	if c.Paths < 1 {
		return fmt.Errorf("trace: Paths = %d, want ≥ 1", c.Paths)
	}
	if c.ExtraEdgeFrac <= 0 {
		c.ExtraEdgeFrac = 0.5
	}
	return nil
}

// Network is the outcome of discovery.
type Network struct {
	// Logical is the discovered measurement topology. Its correlation sets
	// group logical links that share physical links (transitively).
	Logical *topology.Topology
	// Backing[k] lists the physical link indices underlying logical link k.
	Backing [][]int
	// NumPhysicalLinks is the size of the physical link namespace.
	NumPhysicalLinks int
	// Hidden[e] reports whether physical element e responds to traceroute.
	Hidden []bool
	// VisibleHops[k] is the (src, dst) visible-element pair of logical link k.
	VisibleHops [][2]int
}

// Discover generates a physical network, runs traceroute-style route
// discovery between vantage points, and assembles the logical topology.
func Discover(cfg Config) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Elements

	// --- Physical graph: positions in the unit square, a nearest-neighbour
	// backbone for connectivity, plus random chords. ---
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist := func(a, b int) float64 { return math.Hypot(xs[a]-xs[b], ys[a]-ys[b]) }

	type pedge struct{ a, b int }
	var pedges []pedge
	adj := make(map[int][]int, n)
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		pedges = append(pedges, pedge{a, b})
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for v := 1; v < n; v++ {
		best, bestD := -1, math.Inf(1)
		for u := 0; u < v; u++ {
			if d := dist(u, v); d < bestD {
				best, bestD = u, d
			}
		}
		addEdge(v, best)
	}
	for i := 0; i < int(cfg.ExtraEdgeFrac*float64(n)); i++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}

	// --- Hidden elements and vantage points. ---
	hidden := make([]bool, n)
	perm := rng.Perm(n)
	vantage := perm[:cfg.VantagePoints]
	isVantage := make([]bool, n)
	for _, v := range vantage {
		isVantage[v] = true
	}
	wantHidden := int(cfg.HiddenFrac * float64(n))
	for _, e := range perm[cfg.VantagePoints:] {
		if wantHidden == 0 {
			break
		}
		hidden[e] = true
		wantHidden--
	}

	// --- Routes: Dijkstra over physical distances (consistent weights make
	// routes stable, like real routing). ---
	shortest := func(src, dst int) []int { // element sequence
		distTo := make([]float64, n)
		prev := make([]int, n)
		for i := range distTo {
			distTo[i] = math.Inf(1)
			prev[i] = -1
		}
		distTo[src] = 0
		pq := &elemHeap{{src, 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(elemItem)
			if it.d > distTo[it.v] {
				continue
			}
			for _, w := range adj[it.v] {
				nd := it.d + dist(it.v, w)
				if nd < distTo[w] {
					distTo[w] = nd
					prev[w] = it.v
					heap.Push(pq, elemItem{w, nd})
				}
			}
		}
		if prev[dst] == -1 && src != dst {
			return nil
		}
		var seq []int
		for x := dst; x != src; x = prev[x] {
			seq = append(seq, x)
		}
		seq = append(seq, src)
		for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
			seq[i], seq[j] = seq[j], seq[i]
		}
		return seq
	}

	// Physical directed link index: (a,b) element pair -> physical link id.
	plink := map[[2]int]int{}
	plinkID := func(a, b int) int {
		key := [2]int{a, b}
		if id, ok := plink[key]; ok {
			return id
		}
		id := len(plink)
		plink[key] = id
		return id
	}

	// Logical link identity: (visible src, visible dst). Backings union
	// across routes — traceroute cannot distinguish hidden subpaths.
	type llink struct {
		src, dst int
		backing  map[int]bool
	}
	logical := map[[2]int]*llink{}
	logicalID := func(u, v int) *llink {
		key := [2]int{u, v}
		if l, ok := logical[key]; ok {
			return l
		}
		l := &llink{src: u, dst: v, backing: map[int]bool{}}
		logical[key] = l
		return l
	}

	type pathSpec struct{ hops [][2]int } // sequence of logical (src,dst)
	var paths []pathSpec
	seenPath := map[string]bool{}
	attempts := 0
	for len(paths) < cfg.Paths {
		attempts++
		if attempts > 400*cfg.Paths {
			return nil, fmt.Errorf("trace: could not generate %d distinct paths (got %d); increase VantagePoints", cfg.Paths, len(paths))
		}
		i, j := rng.Intn(cfg.VantagePoints), rng.Intn(cfg.VantagePoints)
		if i == j {
			continue
		}
		seq := shortest(vantage[i], vantage[j])
		if seq == nil {
			continue
		}
		// Split the physical route at visible elements.
		var hops [][2]int
		segStart := seq[0] // visible (vantage)
		var segPhys []int
		valid := true
		for h := 1; h < len(seq); h++ {
			segPhys = append(segPhys, plinkID(seq[h-1], seq[h]))
			if hidden[seq[h]] {
				continue
			}
			ll := logicalID(segStart, seq[h])
			for _, p := range segPhys {
				ll.backing[p] = true
			}
			hops = append(hops, [2]int{segStart, seq[h]})
			segStart = seq[h]
			segPhys = segPhys[:0]
		}
		if len(segPhys) != 0 {
			// Route ended at a hidden element — cannot happen (vantage
			// points are visible), but guard anyway.
			valid = false
		}
		if !valid || len(hops) == 0 {
			continue
		}
		key := fmt.Sprint(hops)
		if seenPath[key] {
			continue
		}
		seenPath[key] = true
		paths = append(paths, pathSpec{hops: hops})
	}

	// --- Assemble the logical topology over used logical links. ---
	used := map[[2]int]bool{}
	for _, p := range paths {
		for _, h := range p.hops {
			used[h] = true
		}
	}
	var keys [][2]int
	for k := range used {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	b := topology.NewBuilder()
	b.AddNodes(n) // reuse physical element IDs for visible nodes
	net := &Network{Hidden: hidden, NumPhysicalLinks: len(plink)}
	remap := map[[2]int]topology.LinkID{}
	for _, key := range keys {
		ll := logical[key]
		id := b.AddLink(topology.NodeID(ll.src), topology.NodeID(ll.dst),
			fmt.Sprintf("l%d-%d", ll.src, ll.dst))
		remap[key] = id
		backing := make([]int, 0, len(ll.backing))
		for p := range ll.backing {
			backing = append(backing, p)
		}
		sort.Ints(backing)
		net.Backing = append(net.Backing, backing)
		net.VisibleHops = append(net.VisibleHops, key)
	}
	for pi, p := range paths {
		links := make([]topology.LinkID, len(p.hops))
		for i, h := range p.hops {
			links[i] = remap[h]
		}
		b.AddPath(fmt.Sprintf("P%d", pi), links...)
	}
	// Correlation sets: logical links sharing physical links, transitively.
	for _, group := range shareGroups(net.Backing) {
		if len(group) > 1 {
			ids := make([]topology.LinkID, len(group))
			for i, k := range group {
				ids[i] = topology.LinkID(k)
			}
			b.Correlate(ids...)
		}
	}
	top, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trace: discovered topology invalid: %w", err)
	}
	net.Logical = top
	return net, nil
}

// shareGroups unions logical-link indices sharing a physical link.
func shareGroups(backing [][]int) [][]int {
	parent := make([]int, len(backing))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[int]int{}
	for k, b := range backing {
		for _, r := range b {
			if o, ok := owner[r]; ok {
				if ra, rb := find(o), find(k); ra != rb {
					parent[ra] = rb
				}
			} else {
				owner[r] = k
			}
		}
	}
	groups := map[int][]int{}
	for k := range backing {
		groups[find(k)] = append(groups[find(k)], k)
	}
	var out [][]int
	for k := range backing {
		if g, ok := groups[find(k)]; ok && g[0] == k {
			out = append(out, g)
			delete(groups, find(k))
		}
	}
	return out
}

type elemItem struct {
	v int
	d float64
}

type elemHeap []elemItem

func (h elemHeap) Len() int            { return len(h) }
func (h elemHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h elemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *elemHeap) Push(x interface{}) { *h = append(*h, x.(elemItem)) }
func (h *elemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
