// Package bitset provides a compact dynamic bit set used throughout the
// tomography library to represent sets of links and sets of paths.
//
// Links and paths are identified by small dense integer indices, so a bit set
// is both the fastest and the most memory-efficient representation for the
// set algebra the algorithms need: path coverage ψ(A), unions of congested
// links across correlation sets, and equality tests between coverage sets
// (the heart of the Assumption-4 identifiability check).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dynamic bit set. The zero value is an empty set of capacity zero;
// it grows on demand when bits are set. Sets are value-like: use Clone to
// copy, and note that the assignment operator shares the underlying storage.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity for n bits preallocated.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set containing exactly the given indices.
func FromIndices(indices ...int) *Set {
	s := &Set{}
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// FromWords returns a set holding a copy of the packed words (bit i of
// word w is element w*wordBits+i) — the inverse of Words, for decoders
// that materialize sets from columnar word buffers.
func FromWords(words []uint64) *Set {
	s := &Set{words: make([]uint64, len(words))}
	copy(s.words, words)
	return s
}

func (s *Set) ensure(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts index i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	w := i / wordBits
	s.ensure(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes index i from the set; it is a no-op if i is absent.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Contains reports whether index i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom replaces s's contents with t's, reusing s's storage when large
// enough.
func (s *Set) CopyFrom(t *Set) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	}
	s.words = s.words[:len(t.words)]
	copy(s.words, t.words)
}

// Clear removes all elements, keeping the allocated capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds all elements of t to s.
func (s *Set) UnionWith(t *Set) {
	s.ensure(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s all elements not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// SymmetricDifferenceWith replaces s with s XOR t (elements in exactly one
// of the two sets). This is GF(2) row addition when sets encode 0/1 vectors.
func (s *Set) SymmetricDifferenceWith(t *Set) {
	s.ensure(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] ^= w
	}
}

// DifferenceWith removes all elements of t from s.
func (s *Set) DifferenceWith(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	u := s.Clone()
	u.UnionWith(t)
	return u
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	u := s.Clone()
	u.IntersectWith(t)
	return u
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element of s is in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	for i, w := range s.words {
		var b uint64
		if i < len(t.words) {
			b = t.words[i]
		}
		if w&^b != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order. If fn returns false
// the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// AppendIndices appends the elements of the set in ascending order to dst
// and returns the extended slice — the allocation-free form of Indices for
// callers with a reusable buffer.
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// hexDigits is the alphabet AppendKey encodes words with.
const hexDigits = "0123456789abcdef"

// Key returns a string usable as a map key identifying the set's contents.
// Two sets with equal contents always produce the same key, regardless of
// their internal capacity.
func (s *Set) Key() string {
	return string(s.AppendKey(nil))
}

// AppendKey appends the set's Key bytes to dst and returns the extended
// slice — the allocation-free form of Key for callers that look up
// string-keyed maps with a reusable buffer (m[string(buf)] compiles to a
// no-copy lookup). The bytes are identical to Key's.
func (s *Set) AppendKey(dst []byte) []byte {
	return AppendKeyWords(dst, s.words)
}

// AppendKeyWords is AppendKey over a raw packed word slice: it appends the
// key a Set with exactly those words would produce. Trailing zero words are
// trimmed first, so two slices that encode the same bits under different
// strides (wire rows padded to a fixed words-per-row, say) key identically.
func AppendKeyWords(dst []byte, words []uint64) []byte {
	// Trim trailing zero words so capacity differences do not matter.
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	for i := 0; i < n; i++ {
		w := words[i]
		for shift := 60; shift >= 0; shift -= 4 {
			dst = append(dst, hexDigits[(w>>uint(shift))&0xf])
		}
	}
	return dst
}

// String renders the set as "{1, 4, 7}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Words exposes the set's backing words (least-significant bit of word 0 is
// element 0). The returned slice aliases the set's storage and must be
// treated as read-only; it is invalidated by any mutation that grows the
// set. It exists so columnar consumers (internal/snapstore) can run the
// word-level kernels below directly against set storage.
func (s *Set) Words() []uint64 { return s.words }

// --- Word-level kernels. ---
//
// The columnar snapshot store keeps one packed []uint64 bit column per path;
// its hot queries are OR-reductions and popcounts over such columns. The
// kernels live here so the store and the set share one implementation of the
// word arithmetic.
//
// The reduction kernels are 8-way unrolled: eight independent OR+POPCNT
// chains per iteration give the out-of-order core enough parallelism to
// saturate its popcount ports, and under GOAMD64 ≥ v2 the compiler lowers
// each bits.OnesCount64 to a bare POPCNT (no feature-check branch), so the
// unrolled body is a straight run of loads, ORs and POPCNTs.

// OrWords sets dst |= src element-wise over the common prefix.
func OrWords(dst, src []uint64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	dst, src = dst[:n], src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d, s := dst[i:i+8:i+8], src[i:i+8:i+8]
		d[0] |= s[0]
		d[1] |= s[1]
		d[2] |= s[2]
		d[3] |= s[3]
		d[4] |= s[4]
		d[5] |= s[5]
		d[6] |= s[6]
		d[7] |= s[7]
	}
	for ; i < n; i++ {
		dst[i] |= src[i]
	}
}

// AndNotWords sets dst &^= src element-wise over the common prefix.
func AndNotWords(dst, src []uint64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	dst, src = dst[:n], src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d, s := dst[i:i+8:i+8], src[i:i+8:i+8]
		d[0] &^= s[0]
		d[1] &^= s[1]
		d[2] &^= s[2]
		d[3] &^= s[3]
		d[4] &^= s[4]
		d[5] &^= s[5]
		d[6] &^= s[6]
		d[7] &^= s[7]
	}
	for ; i < n; i++ {
		dst[i] &^= src[i]
	}
}

// PopCountWords returns the total number of set bits across the words.
func PopCountWords(ws []uint64) int {
	c := 0
	i, n := 0, len(ws)
	for ; i+8 <= n; i += 8 {
		w := ws[i : i+8 : i+8]
		c += bits.OnesCount64(w[0]) + bits.OnesCount64(w[1]) +
			bits.OnesCount64(w[2]) + bits.OnesCount64(w[3]) +
			bits.OnesCount64(w[4]) + bits.OnesCount64(w[5]) +
			bits.OnesCount64(w[6]) + bits.OnesCount64(w[7])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(ws[i])
	}
	return c
}

// OrPopCountWords returns popcount(a | b) over the common prefix without
// materializing the OR — the fused kernel of the pair-count sweeps. One pass,
// no store traffic: each 8-word group issues eight loads per side, eight ORs
// and eight POPCNTs.
func OrPopCountWords(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	c := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		x, y := a[i:i+8:i+8], b[i:i+8:i+8]
		c += bits.OnesCount64(x[0]|y[0]) + bits.OnesCount64(x[1]|y[1]) +
			bits.OnesCount64(x[2]|y[2]) + bits.OnesCount64(x[3]|y[3]) +
			bits.OnesCount64(x[4]|y[4]) + bits.OnesCount64(x[5]|y[5]) +
			bits.OnesCount64(x[6]|y[6]) + bits.OnesCount64(x[7]|y[7])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] | b[i])
	}
	return c
}

// AndNotPopCountWords returns popcount(a &^ b) over the common prefix — the
// fused difference-count companion of OrPopCountWords (snapshots where a is
// set but b is not).
func AndNotPopCountWords(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	c := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		x, y := a[i:i+8:i+8], b[i:i+8:i+8]
		c += bits.OnesCount64(x[0]&^y[0]) + bits.OnesCount64(x[1]&^y[1]) +
			bits.OnesCount64(x[2]&^y[2]) + bits.OnesCount64(x[3]&^y[3]) +
			bits.OnesCount64(x[4]&^y[4]) + bits.OnesCount64(x[5]&^y[5]) +
			bits.OnesCount64(x[6]&^y[6]) + bits.OnesCount64(x[7]&^y[7])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

// ZeroWords clears every word.
func ZeroWords(ws []uint64) {
	for i := range ws {
		ws[i] = 0
	}
}

// EnumerateSubsets calls fn for every non-empty subset of the given elements,
// in an order that guarantees subsets with fewer elements are visited before
// their supersets is NOT guaranteed; callers needing an ordering should sort.
// It panics if len(elements) > 30 to avoid accidental exponential blowups.
func EnumerateSubsets(elements []int, fn func(subset *Set) bool) {
	if len(elements) > 30 {
		panic(fmt.Sprintf("bitset: refusing to enumerate 2^%d subsets", len(elements)))
	}
	n := uint(len(elements))
	for mask := uint64(1); mask < 1<<n; mask++ {
		s := &Set{}
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				s.Add(elements[b])
			}
		}
		if !fn(s) {
			return
		}
	}
}
