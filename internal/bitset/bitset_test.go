package bitset

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(200) // beyond initial capacity, must grow
	if !s.Contains(3) || !s.Contains(200) {
		t.Fatal("missing added elements")
	}
	if s.Contains(4) || s.Contains(199) {
		t.Fatal("contains elements never added")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(3)
	if s.Contains(3) {
		t.Fatal("remove failed")
	}
	s.Remove(1000) // out of range remove is a no-op
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestContainsNegative(t *testing.T) {
	s := New(8)
	if s.Contains(-1) {
		t.Fatal("Contains(-1) = true")
	}
	s.Remove(-5) // must not panic
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromIndices(1, 2, 3, 64, 100)
	b := FromIndices(3, 64, 200)

	u := Union(a, b)
	want := []int{1, 2, 3, 64, 100, 200}
	if got := u.Indices(); !equalInts(got, want) {
		t.Fatalf("union = %v, want %v", got, want)
	}

	i := Intersect(a, b)
	if got := i.Indices(); !equalInts(got, []int{3, 64}) {
		t.Fatalf("intersect = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); !equalInts(got, []int{1, 2, 100}) {
		t.Fatalf("difference = %v", got)
	}
}

func TestEqualIgnoresCapacity(t *testing.T) {
	a := New(1000)
	a.Add(5)
	b := FromIndices(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with equal contents but different capacity not Equal")
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestSubset(t *testing.T) {
	a := FromIndices(1, 2)
	b := FromIndices(1, 2, 3)
	if !a.IsSubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	empty := New(0)
	if !empty.IsSubsetOf(a) {
		t.Fatal("∅ ⊆ a expected")
	}
}

func TestIntersects(t *testing.T) {
	a := FromIndices(10, 20)
	b := FromIndices(20, 30)
	c := FromIndices(31)
	if !a.Intersects(b) {
		t.Fatal("a ∩ b nonempty expected")
	}
	if b.Intersects(c) == false && b.IntersectionCount(c) != 0 {
		t.Fatal("inconsistent Intersects / IntersectionCount")
	}
	if a.Intersects(c) {
		t.Fatal("a ∩ c empty expected")
	}
	if got := a.IntersectionCount(b); got != 1 {
		t.Fatalf("IntersectionCount = %d, want 1", got)
	}
}

func TestMin(t *testing.T) {
	if got := New(0).Min(); got != -1 {
		t.Fatalf("empty Min = %d, want -1", got)
	}
	if got := FromIndices(65, 3, 128).Min(); got != 3 {
		t.Fatalf("Min = %d, want 3", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(1, 2, 3, 4, 5)
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d, want 3", count)
	}
}

func TestClear(t *testing.T) {
	s := FromIndices(1, 100)
	s.Clear()
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(2, 0).String(); got != "{0, 2}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestEnumerateSubsets(t *testing.T) {
	var seen []string
	EnumerateSubsets([]int{4, 7, 9}, func(s *Set) bool {
		seen = append(seen, s.String())
		return true
	})
	if len(seen) != 7 { // 2^3 - 1 non-empty subsets
		t.Fatalf("enumerated %d subsets, want 7", len(seen))
	}
	uniq := map[string]bool{}
	for _, k := range seen {
		if uniq[k] {
			t.Fatalf("duplicate subset %s", k)
		}
		uniq[k] = true
	}
}

func TestEnumerateSubsetsEarlyStop(t *testing.T) {
	n := 0
	EnumerateSubsets([]int{1, 2, 3, 4}, func(s *Set) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("enumerated %d, want early stop at 5", n)
	}
}

func TestEnumerateSubsetsTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >30 elements")
		}
	}()
	big := make([]int, 31)
	EnumerateSubsets(big, func(*Set) bool { return true })
}

// Property: union/intersection/difference agree with a map-based reference
// implementation on random inputs.
func TestSetAlgebraAgainstReference(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		ref := func(xs []uint8) map[int]bool {
			m := map[int]bool{}
			for _, x := range xs {
				m[int(x)] = true
			}
			return m
		}
		ma, mb := ref(aIdx), ref(bIdx)
		a, b := New(0), New(0)
		for i := range ma {
			a.Add(i)
		}
		for i := range mb {
			b.Add(i)
		}

		u := Union(a, b)
		for i := 0; i < 256; i++ {
			if u.Contains(i) != (ma[i] || mb[i]) {
				return false
			}
		}
		in := Intersect(a, b)
		for i := 0; i < 256; i++ {
			if in.Contains(i) != (ma[i] && mb[i]) {
				return false
			}
		}
		d := a.Clone()
		d.DifferenceWith(b)
		for i := 0; i < 256; i++ {
			if d.Contains(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over contents — two random sets have equal keys
// iff they are Equal.
func TestKeyInjective(t *testing.T) {
	f := func(aIdx, bIdx []uint16) bool {
		a, b := New(0), New(0)
		for _, i := range aIdx {
			a.Add(int(i) % 500)
		}
		for _, i := range bIdx {
			b.Add(int(i) % 500)
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Indices is sorted and round-trips through FromIndices.
func TestIndicesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		s := New(0)
		for i := 0; i < n; i++ {
			s.Add(rng.Intn(300))
		}
		idx := s.Indices()
		if !sort.IntsAreSorted(idx) {
			t.Fatalf("Indices not sorted: %v", idx)
		}
		if got := FromIndices(idx...); !got.Equal(s) {
			t.Fatalf("round trip failed: %v vs %v", got, s)
		}
		if len(idx) != s.Len() {
			t.Fatalf("len(Indices)=%d, Len()=%d", len(idx), s.Len())
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWordKernels(t *testing.T) {
	a := []uint64{0b1010, 0xff00, 1}
	b := []uint64{0b0110, 0x00ff}

	or := append([]uint64(nil), a...)
	OrWords(or, b)
	if or[0] != 0b1110 || or[1] != 0xffff || or[2] != 1 {
		t.Fatalf("OrWords: %x", or)
	}

	an := append([]uint64(nil), a...)
	AndNotWords(an, b)
	if an[0] != 0b1000 || an[1] != 0xff00 || an[2] != 1 {
		t.Fatalf("AndNotWords: %x", an)
	}

	if got := PopCountWords(a); got != 2+8+1 {
		t.Fatalf("PopCountWords = %d, want 11", got)
	}

	z := append([]uint64(nil), a...)
	ZeroWords(z)
	if PopCountWords(z) != 0 {
		t.Fatalf("ZeroWords left bits: %x", z)
	}

	// Kernels over mismatched lengths only touch the common prefix.
	short := []uint64{^uint64(0)}
	OrWords(short, a)
	if len(short) != 1 {
		t.Fatal("OrWords grew dst")
	}
}

func TestWordsView(t *testing.T) {
	s := FromIndices(0, 64, 65)
	ws := s.Words()
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 0b11 {
		t.Fatalf("Words() = %x", ws)
	}
	if got := PopCountWords(ws); got != s.Len() {
		t.Fatalf("popcount %d != Len %d", got, s.Len())
	}
}

// TestAppendKeyMatchesKey pins the allocation-free key encoder against Key:
// identical bytes for every shape, including trailing-zero-word trimming and
// buffer reuse.
func TestAppendKeyMatchesKey(t *testing.T) {
	sets := []*Set{
		New(0),
		New(100),
		FromIndices(0),
		FromIndices(63),
		FromIndices(64),
		FromIndices(0, 63, 64, 127, 128),
		FromIndices(5, 999),
	}
	// A set whose high words were set then cleared exercises trimming.
	trimmed := FromIndices(3, 500)
	trimmed.Remove(500)
	sets = append(sets, trimmed)

	buf := make([]byte, 0, 64)
	for _, s := range sets {
		want := s.Key()
		buf = s.AppendKey(buf[:0])
		if string(buf) != want {
			t.Fatalf("AppendKey(%v) = %q, Key = %q", s, string(buf), want)
		}
	}
	if got := New(10).Key(); got != "" {
		t.Fatalf("empty set key = %q, want empty string", got)
	}
}

// TestUnrolledKernelsAgainstReference pins the 8-way unrolled word kernels
// (and the fused OR/AND-NOT popcount variants) bit-identical to naive
// single-word reference loops, across lengths that exercise every unroll
// remainder (0..17 words) and mismatched slice lengths.
func TestUnrolledKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randWords := func(n int) []uint64 {
		ws := make([]uint64, n)
		for i := range ws {
			ws[i] = rng.Uint64()
			if rng.Intn(4) == 0 {
				ws[i] = 0 // zero words exercise skip-friendly inputs
			}
		}
		return ws
	}
	for la := 0; la <= 17; la++ {
		for _, lb := range []int{0, 1, la, la + 3} {
			a, b := randWords(la), randWords(lb)
			n := min(la, lb)

			wantOrPop, wantAndNotPop := 0, 0
			for i := 0; i < n; i++ {
				wantOrPop += bits.OnesCount64(a[i] | b[i])
				wantAndNotPop += bits.OnesCount64(a[i] &^ b[i])
			}
			if got := OrPopCountWords(a, b); got != wantOrPop {
				t.Fatalf("OrPopCountWords(len %d, %d) = %d, want %d", la, lb, got, wantOrPop)
			}
			if got := AndNotPopCountWords(a, b); got != wantAndNotPop {
				t.Fatalf("AndNotPopCountWords(len %d, %d) = %d, want %d", la, lb, got, wantAndNotPop)
			}

			wantPop := 0
			for _, w := range a {
				wantPop += bits.OnesCount64(w)
			}
			if got := PopCountWords(a); got != wantPop {
				t.Fatalf("PopCountWords(len %d) = %d, want %d", la, got, wantPop)
			}

			or := append([]uint64(nil), a...)
			OrWords(or, b)
			an := append([]uint64(nil), a...)
			AndNotWords(an, b)
			for i := range a {
				wo, wa := a[i], a[i]
				if i < n {
					wo, wa = a[i]|b[i], a[i]&^b[i]
				}
				if or[i] != wo {
					t.Fatalf("OrWords(len %d, %d)[%d] = %x, want %x", la, lb, i, or[i], wo)
				}
				if an[i] != wa {
					t.Fatalf("AndNotWords(len %d, %d)[%d] = %x, want %x", la, lb, i, an[i], wa)
				}
			}
		}
	}
}
