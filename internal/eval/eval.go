// Package eval implements the paper's evaluation metrics (Section 5,
// "Metrics"): the absolute error between a link's actual congestion
// probability and the probability computed by an algorithm, summarized over
// the potentially congested links as a CDF, a mean, and a 90th percentile.
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
)

// AbsErrors returns the sorted absolute errors |truth[k] − inferred[k]| over
// the links in include (all links when include is nil).
func AbsErrors(truth, inferred []float64, include *bitset.Set) []float64 {
	if len(truth) != len(inferred) {
		panic(fmt.Sprintf("eval: truth has %d links, inferred %d", len(truth), len(inferred)))
	}
	var out []float64
	for k := range truth {
		if include != nil && !include.Contains(k) {
			continue
		}
		out = append(out, math.Abs(truth[k]-inferred[k]))
	}
	sort.Float64s(out)
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) of the sorted slice
// xs using nearest-rank interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// FracBelow returns the fraction of (sorted) xs that is ≤ x — one point of
// the paper's CDF plots.
func FracBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(xs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(xs))
}

// CDF samples the empirical CDF of the sorted errors at the given points,
// returning percentages (0–100) as in the paper's figures.
func CDF(xs []float64, points []float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = 100 * FracBelow(xs, p)
	}
	return out
}

// DefaultCDFPoints are the x-axis sample points used for the figure
// reproductions (matching the paper's 0..1 axis).
func DefaultCDFPoints() []float64 {
	pts := make([]float64, 0, 21)
	for i := 0; i <= 20; i++ {
		pts = append(pts, float64(i)*0.05)
	}
	return pts
}
