package eval

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestAbsErrors(t *testing.T) {
	truth := []float64{0.5, 0.2, 0.0, 1.0}
	inferred := []float64{0.1, 0.2, 0.3, 0.9}
	got := AbsErrors(truth, inferred, nil)
	want := []float64{0.0, 0.1, 0.3, 0.4} // sorted
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAbsErrorsWithInclude(t *testing.T) {
	truth := []float64{0.5, 0.2, 0.0}
	inferred := []float64{0.1, 0.2, 0.3}
	got := AbsErrors(truth, inferred, bitset.FromIndices(0, 2))
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 entries", got)
	}
	if math.Abs(got[0]-0.3) > 1e-15 || math.Abs(got[1]-0.4) > 1e-15 {
		t.Fatalf("got %v", got)
	}
}

func TestAbsErrorsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	AbsErrors([]float64{1}, []float64{1, 2}, nil)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := Percentile(xs, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 4.5", got)
	}
	if got := Percentile(xs, 90); math.Abs(got-8.1) > 1e-12 {
		t.Fatalf("p90 = %v, want 8.1", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestFracBelowAndCDF(t *testing.T) {
	xs := []float64{0.0, 0.1, 0.1, 0.5}
	if got := FracBelow(xs, 0.1); got != 0.75 {
		t.Fatalf("FracBelow(0.1) = %v, want 0.75", got)
	}
	if got := FracBelow(xs, 0.05); got != 0.25 {
		t.Fatalf("FracBelow(0.05) = %v", got)
	}
	if got := FracBelow(xs, 1); got != 1 {
		t.Fatalf("FracBelow(1) = %v", got)
	}
	if got := FracBelow(nil, 1); got != 0 {
		t.Fatal("empty FracBelow")
	}
	cdf := CDF(xs, []float64{0.05, 0.1, 1})
	if cdf[0] != 25 || cdf[1] != 75 || cdf[2] != 100 {
		t.Fatalf("CDF = %v", cdf)
	}
}

func TestDefaultCDFPoints(t *testing.T) {
	pts := DefaultCDFPoints()
	if len(pts) != 21 || pts[0] != 0 || pts[20] != 1 {
		t.Fatalf("points = %v", pts)
	}
	if !sort.Float64sAreSorted(pts) {
		t.Fatal("points not sorted")
	}
}

// Property: CDF is monotone and bounded for random inputs.
func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Abs(v))
			}
		}
		sort.Float64s(xs)
		prev := -1.0
		for _, p := range []float64{0, 0.1, 0.5, 1, 10, 1e12} {
			f := FracBelow(xs, p)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile interpolation is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sort.Float64s(xs)
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}
