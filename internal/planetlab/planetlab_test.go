package planetlab

import (
	"testing"

	"repro/internal/topology"
)

func defaultCfg() Config {
	return Config{Routers: 60, VantagePoints: 12, Paths: 50, Seed: 1}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Routers: 2, VantagePoints: 2, Paths: 1}); err == nil {
		t.Fatal("tiny router count accepted")
	}
	if _, err := Generate(Config{Routers: 10, VantagePoints: 1, Paths: 1}); err == nil {
		t.Fatal("one vantage point accepted")
	}
	if _, err := Generate(Config{Routers: 10, VantagePoints: 20, Paths: 1}); err == nil {
		t.Fatal("more vantage points than routers accepted")
	}
	if _, err := Generate(Config{Routers: 10, VantagePoints: 4, Paths: 0}); err == nil {
		t.Fatal("zero paths accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	if top.NumPaths() != 50 {
		t.Fatalf("paths = %d, want 50", top.NumPaths())
	}
	if top.NumLinks() == 0 {
		t.Fatal("no links")
	}
	if len(net.ClusterOf) != top.NumLinks() {
		t.Fatalf("ClusterOf has %d entries, want %d", len(net.ClusterOf), top.NumLinks())
	}
	for k, c := range net.ClusterOf {
		if c < 0 || c >= net.NumClusters {
			t.Fatalf("link %d cluster %d outside [0,%d)", k, c, net.NumClusters)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology.NumLinks() != b.Topology.NumLinks() {
		t.Fatal("same seed produced different link counts")
	}
	for i := range a.ClusterOf {
		if a.ClusterOf[i] != b.ClusterOf[i] {
			t.Fatal("same seed produced different clusters")
		}
	}
}

// Clusters must be contiguous sibling fans: all links of a cluster share a
// common anchor node, and no measurement path traverses two links of the
// same cluster (the correlation lives in pairs of paths, as in Figure 2(a)).
func TestClustersContiguous(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	members := map[int][]int{}
	for k, c := range net.ClusterOf {
		members[c] = append(members[c], k)
	}
	for c, links := range members {
		if len(links) == 1 {
			continue
		}
		// Common anchor node.
		common := map[topology.NodeID]int{}
		for _, k := range links {
			l := top.Link(topology.LinkID(k))
			common[l.Src]++
			common[l.Dst]++
		}
		anchored := false
		for _, n := range common {
			if n == len(links) {
				anchored = true
			}
		}
		if !anchored {
			t.Fatalf("cluster %d has no common anchor node", c)
		}
	}
	// No path traverses two links of one cluster.
	for _, p := range top.Paths() {
		seen := map[int]bool{}
		for _, l := range p.Links {
			c := net.ClusterOf[l]
			if seen[c] {
				t.Fatalf("path %s traverses cluster %d twice", p.Name, c)
			}
			seen[c] = true
		}
	}
}

// Cluster construction must not blanket-violate Assumption 4: a node with
// two or more used ingress links never has them all in one cluster.
func TestFanSplitAvoidsBlanketViolations(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	in := map[topology.NodeID][]int{}
	for _, l := range top.Links() {
		in[l.Dst] = append(in[l.Dst], int(l.ID))
	}
	for v, links := range in {
		if len(links) < 2 {
			continue
		}
		first := net.ClusterOf[links[0]]
		allSame := true
		for _, k := range links[1:] {
			if net.ClusterOf[k] != first {
				allSame = false
				break
			}
		}
		if allSame {
			t.Fatalf("node %d has all %d ingress links in cluster %d", v, len(links), first)
		}
	}
}

// The topology's correlation sets must match the cluster assignment for all
// multi-link clusters.
func TestCorrelationSetsMatchClusters(t *testing.T) {
	net, err := Generate(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	top := net.Topology
	for a := 0; a < top.NumLinks(); a++ {
		for b := a + 1; b < top.NumLinks(); b++ {
			sameCluster := net.ClusterOf[a] == net.ClusterOf[b]
			sameSet := top.SetOf(topology.LinkID(a)) == top.SetOf(topology.LinkID(b))
			if sameCluster != sameSet {
				t.Fatalf("links %d,%d: sameCluster=%v but sameSet=%v", a, b, sameCluster, sameSet)
			}
		}
	}
}

func TestGenerateLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net, err := Generate(Config{Routers: 250, VantagePoints: 40, Paths: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if net.Topology.NumPaths() != 300 {
		t.Fatalf("paths = %d", net.Topology.NumPaths())
	}
	if net.NumClusters < 10 {
		t.Fatalf("clusters = %d, expected many", net.NumClusters)
	}
}
