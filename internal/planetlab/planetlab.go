// Package planetlab synthesizes traceroute-mesh topologies in the style of
// the paper's PlanetLab experiments (Section 5, "PlanetLab topologies"):
// a router-level graph laid out in the plane (Waxman-style random graph, the
// other classic BRITE model), a set of vantage points, and measurement paths
// that follow shortest routes between vantage pairs — mimicking traceroute
// on a real mesh. Correlation sets are contiguous clusters of links, grown
// by breadth-first search over link adjacency, "to simulate scenarios where
// each correlation set corresponds to a local-area network or an
// administrative domain".
package planetlab

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Config parameterizes generation.
type Config struct {
	// Routers is the number of router nodes (≥ 4).
	Routers int
	// VantagePoints is the number of measurement hosts (≥ 2), each attached
	// to a random router by an access link.
	VantagePoints int
	// Paths is the number of measurement paths to keep (vantage pairs whose
	// traceroute "completed").
	Paths int
	// Alpha and Beta are the Waxman connection parameters (defaults 0.15,
	// 0.25): P(edge u,v) = Alpha·exp(−d(u,v)/(Beta·L)).
	Alpha, Beta float64
	// ClusterSize bounds correlation-cluster sizes, drawn uniformly from
	// [Min, Max] (defaults 2..6).
	ClusterSize [2]int
	// DiscardFrac simulates incomplete traceroutes: this fraction of
	// candidate paths is dropped (default 0.1).
	DiscardFrac float64
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) fill() error {
	if c.Routers < 4 {
		return fmt.Errorf("planetlab: Routers = %d, want ≥ 4", c.Routers)
	}
	if c.VantagePoints < 2 {
		return fmt.Errorf("planetlab: VantagePoints = %d, want ≥ 2", c.VantagePoints)
	}
	if c.Paths < 1 {
		return fmt.Errorf("planetlab: Paths = %d, want ≥ 1", c.Paths)
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.15
	}
	if c.Beta <= 0 {
		c.Beta = 0.25
	}
	if c.ClusterSize[0] <= 0 {
		c.ClusterSize[0] = 2
	}
	if c.ClusterSize[1] < c.ClusterSize[0] {
		c.ClusterSize[1] = c.ClusterSize[0] + 4
	}
	if c.DiscardFrac < 0 || c.DiscardFrac >= 1 {
		c.DiscardFrac = 0.1
	}
	return nil
}

// Network is a generated traceroute mesh.
type Network struct {
	// Topology is the measurement topology with contiguous-cluster
	// correlation sets.
	Topology *topology.Topology
	// ClusterOf[k] is the correlation cluster of link k.
	ClusterOf []int
	// NumClusters is the number of correlation clusters.
	NumClusters int
}

// Generate builds a traceroute-mesh topology.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- Waxman router graph in the unit square. ---
	xs := make([]float64, cfg.Routers)
	ys := make([]float64, cfg.Routers)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist := func(a, b int) float64 {
		return math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
	}
	l := math.Sqrt2 // max distance in the unit square
	type edge struct {
		a, b int
		w    float64
	}
	var edges []edge
	adj := make([][]int, cfg.Routers)
	hasEdge := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if hasEdge[[2]int{a, b}] {
			return
		}
		hasEdge[[2]int{a, b}] = true
		edges = append(edges, edge{a, b, dist(a, b)})
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for a := 0; a < cfg.Routers; a++ {
		for b := a + 1; b < cfg.Routers; b++ {
			if rng.Float64() < cfg.Alpha*math.Exp(-dist(a, b)/(cfg.Beta*l)) {
				addEdge(a, b)
			}
		}
	}
	// Guarantee connectivity: chain each router to its nearest already-
	// connected predecessor (a cheap spanning structure).
	for v := 1; v < cfg.Routers; v++ {
		best, bestD := -1, math.Inf(1)
		for u := 0; u < v; u++ {
			if d := dist(u, v); d < bestD {
				best, bestD = u, d
			}
		}
		addEdge(v, best)
	}

	// --- Vantage points: hosts hanging off random distinct routers. ---
	if cfg.VantagePoints > cfg.Routers {
		return nil, fmt.Errorf("planetlab: more vantage points (%d) than routers (%d)", cfg.VantagePoints, cfg.Routers)
	}
	perm := rng.Perm(cfg.Routers)
	vantageRouter := perm[:cfg.VantagePoints]

	// --- Shortest routes (Dijkstra on distance weights) between vantage
	// router pairs; consistent weights make routes traceroute-stable. ---
	// Directed link namespace: for each undirected edge, two directed links.
	type dlink struct{ src, dst int }
	var dlinks []dlink
	dindex := map[[2]int]int{}
	for _, e := range edges {
		dindex[[2]int{e.a, e.b}] = len(dlinks)
		dlinks = append(dlinks, dlink{e.a, e.b})
		dindex[[2]int{e.b, e.a}] = len(dlinks)
		dlinks = append(dlinks, dlink{e.b, e.a})
	}
	shortest := func(src, dst int) []int { // returns dlink indices
		distTo := make([]float64, cfg.Routers)
		prev := make([]int, cfg.Routers)
		for i := range distTo {
			distTo[i] = math.Inf(1)
			prev[i] = -1
		}
		distTo[src] = 0
		pq := &nodeHeap{{src, 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(nodeItem)
			if it.d > distTo[it.v] {
				continue
			}
			if it.v == dst {
				break
			}
			for _, w := range adj[it.v] {
				nd := it.d + dist(it.v, w)
				if nd < distTo[w] {
					distTo[w] = nd
					prev[w] = it.v
					heap.Push(pq, nodeItem{w, nd})
				}
			}
		}
		if prev[dst] == -1 && src != dst {
			return nil
		}
		var nodes []int
		for x := dst; x != src; x = prev[x] {
			nodes = append(nodes, x)
		}
		nodes = append(nodes, src)
		var links []int
		for i := len(nodes) - 1; i > 0; i-- {
			links = append(links, dindex[[2]int{nodes[i], nodes[i-1]}])
		}
		return links
	}

	type pathSpec struct{ links []int }
	var paths []pathSpec
	seen := map[string]bool{}
	attempts := 0
	for len(paths) < cfg.Paths {
		attempts++
		if attempts > 400*cfg.Paths {
			return nil, fmt.Errorf("planetlab: could not generate %d distinct paths (got %d); increase VantagePoints", cfg.Paths, len(paths))
		}
		i, j := rng.Intn(cfg.VantagePoints), rng.Intn(cfg.VantagePoints)
		if i == j {
			continue
		}
		if rng.Float64() < cfg.DiscardFrac {
			continue // incomplete traceroute, discarded as in the paper
		}
		links := shortest(vantageRouter[i], vantageRouter[j])
		if links == nil {
			continue
		}
		key := fmt.Sprint(links)
		if seen[key] {
			continue
		}
		seen[key] = true
		paths = append(paths, pathSpec{links})
	}

	// --- Keep used links; rebuild compactly. ---
	used := map[int]bool{}
	for _, p := range paths {
		for _, li := range p.links {
			used[li] = true
		}
	}
	order := make([]int, 0, len(used))
	for li := range used {
		order = append(order, li)
	}
	sort.Ints(order)
	remap := map[int]topology.LinkID{}

	b := topology.NewBuilder()
	b.AddNodes(cfg.Routers)
	for _, li := range order {
		dl := dlinks[li]
		remap[li] = b.AddLink(topology.NodeID(dl.src), topology.NodeID(dl.dst),
			fmt.Sprintf("r%d-r%d", dl.src, dl.dst))
	}
	for pi, p := range paths {
		links := make([]topology.LinkID, len(p.links))
		for i, li := range p.links {
			links[i] = remap[li]
		}
		b.AddPath(fmt.Sprintf("P%d", pi), links...)
	}

	// --- Contiguous clusters around shared infrastructure. ---
	// Each cluster is a set of "sibling" links anchored at one router: a
	// piece of the router's fan-in or fan-out. Sibling links share the
	// router's hidden infrastructure (the undiscovered switch of Figure
	// 2(a)), which is exactly the paper's correlation scenario — and a
	// measurement path traverses at most one link of a fan-in (or fan-out)
	// piece, so the correlation shows up in pairs of paths rather than
	// destroying single-path observations.
	//
	// A router's fan is always split into at least two pieces (when it has
	// ≥2 links in the fan) so that cluster construction itself does not
	// blanket-violate Assumption 4 at every interior node; the Figure-4
	// scenarios create violations deliberately instead.
	numLinks := len(order)
	linkNodes := make([][2]int, numLinks)
	for i, li := range order {
		linkNodes[i] = [2]int{dlinks[li].src, dlinks[li].dst}
	}
	inOf := map[int][]int{}  // node -> link indices with dst == node
	outOf := map[int][]int{} // node -> link indices with src == node
	for k, ln := range linkNodes {
		outOf[ln[0]] = append(outOf[ln[0]], k)
		inOf[ln[1]] = append(inOf[ln[1]], k)
	}
	clusterOf := make([]int, numLinks)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	numClusters := 0
	maxPiece := cfg.ClusterSize[1]
	chunkFan := func(fan []int) {
		var free []int
		for _, k := range fan {
			if clusterOf[k] == -1 {
				free = append(free, k)
			}
		}
		if len(free) == 0 {
			return
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		// Split into ≥2 pieces whenever possible, each of size ≤ maxPiece.
		pieces := (len(free) + maxPiece - 1) / maxPiece
		if len(free) >= 2 && pieces < 2 {
			pieces = 2
		}
		if pieces == 0 {
			pieces = 1
		}
		for i, k := range free {
			clusterOf[k] = numClusters + i%pieces
		}
		numClusters += pieces
	}
	for _, v := range rng.Perm(cfg.Routers) {
		chunkFan(inOf[v])
		chunkFan(outOf[v])
	}
	groups := map[int][]topology.LinkID{}
	for k, c := range clusterOf {
		groups[c] = append(groups[c], topology.LinkID(k))
	}
	for c := 0; c < numClusters; c++ {
		if len(groups[c]) > 1 {
			b.Correlate(groups[c]...)
		}
	}

	top, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("planetlab: generated topology invalid: %w", err)
	}
	return &Network{Topology: top, ClusterOf: clusterOf, NumClusters: numClusters}, nil
}

// nodeItem / nodeHeap implement the Dijkstra priority queue.
type nodeItem struct {
	v int
	d float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
