// Package profiling is the tiny shared backend of the CLI -cpuprofile /
// -memprofile flags: start CPU profiling and arrange a heap snapshot at
// shutdown, so performance investigations never need code edits — run the
// command with the flags and feed the files to `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is safe to call exactly once;
// file-creation problems surface immediately, write problems at stop time.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("creating heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
