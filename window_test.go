package tomography_test

import (
	"context"
	"sync"
	"testing"

	tomography "repro"
	"repro/internal/brite"
	"repro/internal/scenario"
)

// windowFixture builds a small Brite topology with a flash-crowd-style
// dynamic process and simulates a record from it.
func windowFixture(t testing.TB, snapshots int) (*tomography.Topology, *tomography.Record) {
	t.Helper()
	net, err := brite.Generate(brite.Config{ASes: 12, EdgesPerAS: 2, Paths: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.15, Level: scenario.HighCorrelation, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: s.Topology, Model: s.Model, Snapshots: snapshots, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Topology, rec
}

// TestWindowedMatchesBatch is the windowed==batch equivalence property test
// of the online inference layer: at every checkpoint of a sliding replay,
// for every estimator, the windowed estimate must be bit-identical to a
// one-shot estimate over exactly the window's rows through the same plan.
// Run with -race: the plan is shared by the window and the batch side, and
// by concurrent subtests below.
func TestWindowedMatchesBatch(t *testing.T) {
	const (
		snapshots = 700
		window    = 256
		stride    = 97
	)
	top, rec := windowFixture(t, snapshots)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, estimator := range []string{"correlation", "independence", "mle"} {
		estimator := estimator
		t.Run(estimator, func(t *testing.T) {
			t.Parallel() // all estimators share one plan — exercised under -race
			cfg := tomography.WindowConfig{Size: window, Estimator: estimator, Plan: plan}
			pts, err := tomography.WindowedEstimate(top, rec, cfg, stride)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) == 0 {
				t.Fatal("no checkpoints")
			}
			for _, pt := range pts {
				// The frozen window at checkpoint T holds rows (T−window, T].
				var rows []*tomography.PathSet
				for ts := pt.T - window + 1; ts <= pt.T; ts++ {
					rows = append(rows, rec.PathSnapshot(ts))
				}
				batchSrc, err := tomography.NewEmpirical(tomography.NewRecordFromRows(top.NumPaths(), rows))
				if err != nil {
					t.Fatal(err)
				}
				batch, err := tomography.Estimate(estimator, plan, batchSrc, tomography.EstimateOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(pt.Result.CongestionProb) != len(batch.CongestionProb) {
					t.Fatalf("checkpoint %d: result lengths differ", pt.T)
				}
				for k := range batch.CongestionProb {
					if pt.Result.CongestionProb[k] != batch.CongestionProb[k] {
						t.Fatalf("checkpoint %d link %d: windowed %v != batch %v (not bit-identical)",
							pt.T, k, pt.Result.CongestionProb[k], batch.CongestionProb[k])
					}
				}
			}
		})
	}
}

// TestWindowedMatchesBatchTheorem extends the equivalence property to the
// theorem estimator, the only one that consumes the congested-pattern
// histogram — exactly the structure the sliding window's incremental
// eviction maintains. It runs on the Figure-1(a) topology (the theorem
// algorithm needs small correlation sets and Assumption 4).
func TestWindowedMatchesBatchTheorem(t *testing.T) {
	top := tomography.Figure1A()
	s, err := tomography.BuildScenario("quickstart", 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: s.Model, Snapshots: 900, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const window = 256
	w, err := tomography.NewWindow(top, tomography.WindowConfig{Size: window, Estimator: "theorem"})
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < rec.Snapshots(); ts++ {
		w.Observe(rec.PathSnapshot(ts))
		// Query the pattern histogram mid-stream so eviction maintains it
		// incrementally instead of rebuilding it lazily at each checkpoint.
		w.Source().ProbExactCongestedPaths(rec.PathSnapshot(ts))
		if ts+1 < window || (ts+1)%101 != 0 {
			continue
		}
		got, err := w.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		var rows []*tomography.PathSet
		for u := ts - window + 1; u <= ts; u++ {
			rows = append(rows, rec.PathSnapshot(u))
		}
		batchSrc, err := tomography.NewEmpirical(tomography.NewRecordFromRows(top.NumPaths(), rows))
		if err != nil {
			t.Fatal(err)
		}
		want, err := tomography.Estimate("theorem", w.Plan(), batchSrc, tomography.EstimateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.CongestionProb {
			if got.CongestionProb[k] != want.CongestionProb[k] {
				t.Fatalf("t=%d link %d: windowed theorem %v != batch %v (not bit-identical)",
					ts, k, got.CongestionProb[k], want.CongestionProb[k])
			}
		}
		for key, p := range want.Theorem.JointProb {
			if got.Theorem.JointProb[key] != p {
				t.Fatalf("t=%d: recovered joint distribution diverged at state %q", ts, key)
			}
		}
	}
}

// TestWindowObserveEstimate drives a Window by hand (partial fills, repeated
// estimates) and checks the equivalence on a half-full window too.
func TestWindowObserveEstimate(t *testing.T) {
	top, rec := windowFixture(t, 300)
	w, err := tomography.NewWindow(top, tomography.WindowConfig{Size: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Estimate(); err == nil {
		t.Fatal("estimate over an empty window succeeded")
	}
	for ts := 0; ts < rec.Snapshots(); ts++ {
		w.Observe(rec.PathSnapshot(ts))
	}
	if w.Seen() != 300 || w.Len() != 300 {
		t.Fatalf("seen %d, len %d, want 300, 300", w.Seen(), w.Len())
	}
	got, err := w.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tomography.Estimate("correlation", w.Plan(), src, tomography.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.CongestionProb {
		if got.CongestionProb[k] != want.CongestionProb[k] {
			t.Fatalf("link %d: half-full window %v != batch %v", k, got.CongestionProb[k], want.CongestionProb[k])
		}
	}
}

// TestConcurrentWindowsSharePlan runs several windows over one compiled plan
// concurrently — the deployment shape of a monitor fleet — under -race.
func TestConcurrentWindowsSharePlan(t *testing.T) {
	top, rec := windowFixture(t, 400)
	plan, err := tomography.Compile(top, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			w, err := tomography.NewWindow(top, tomography.WindowConfig{Size: 128, Plan: plan})
			if err != nil {
				errs <- err
				return
			}
			for ts := offset; ts < rec.Snapshots(); ts++ {
				w.Observe(rec.PathSnapshot(ts))
				if w.Len() >= 128 && ts%50 == 0 {
					if _, err := w.Estimate(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g * 13)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestWindowConfigErrors(t *testing.T) {
	top, _ := windowFixture(t, 70)
	other := tomography.Figure1A()
	otherPlan, err := tomography.Compile(other, tomography.PlanOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		top  *tomography.Topology
		cfg  tomography.WindowConfig
	}{
		{"nil topology", nil, tomography.WindowConfig{Size: 10}},
		{"zero size", top, tomography.WindowConfig{}},
		{"unknown estimator", top, tomography.WindowConfig{Size: 10, Estimator: "nope"}},
		{"foreign plan", top, tomography.WindowConfig{Size: 10, Plan: otherPlan}},
	}
	for _, tc := range cases {
		if _, err := tomography.NewWindow(tc.top, tc.cfg); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: other, Model: mustQuickstartModel(t), Snapshots: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tomography.WindowedEstimate(other, rec, tomography.WindowConfig{Size: 10}, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := tomography.WindowedEstimate(other, nil, tomography.WindowConfig{Size: 10}, 5); err == nil {
		t.Error("nil record accepted")
	}
}

// mustQuickstartModel returns the quickstart scenario's model (a convenient
// valid Figure-1A congestion model).
func mustQuickstartModel(t *testing.T) tomography.Model {
	t.Helper()
	s, err := tomography.BuildScenario("quickstart", 1)
	if err != nil {
		t.Fatal(err)
	}
	return s.Model
}

// TestEvaluateBatchDynamicScenarios feeds registry-built dynamic scenarios
// through EvaluateBatch and checks that results arrive, are deterministic
// across worker counts, and measure against stationary truth.
func TestEvaluateBatchDynamicScenarios(t *testing.T) {
	var scenarios []*tomography.Scenario
	for _, name := range []string{"flash-crowd", "link-flap", "quickstart"} {
		s, err := tomography.BuildScenario(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, s)
	}
	run := func(workers int) []tomography.BatchResult {
		res, err := tomography.EvaluateBatch(context.Background(), scenarios, tomography.BatchOptions{
			Snapshots: 400, Seed: 17, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	for i, r := range serial {
		if r.Err != nil {
			t.Fatalf("scenario %s failed: %v", r.Scenario.Name, r.Err)
		}
		if len(r.CorrErrors) == 0 {
			t.Fatalf("scenario %s produced no error samples", r.Scenario.Name)
		}
		for k := range r.Correlation.CongestionProb {
			if r.Correlation.CongestionProb[k] != parallel[i].Correlation.CongestionProb[k] {
				t.Fatalf("scenario %s link %d: serial %v != parallel %v",
					r.Scenario.Name, k, r.Correlation.CongestionProb[k], parallel[i].Correlation.CongestionProb[k])
			}
		}
	}
}

// TestScenarioRegistryFacade sanity-checks the facade surface of the named
// registry.
func TestScenarioRegistryFacade(t *testing.T) {
	specs := tomography.Scenarios()
	names := tomography.ScenarioNames()
	if len(specs) != len(names) || len(specs) < 6 {
		t.Fatalf("Scenarios()/ScenarioNames() disagree or too small: %d vs %d", len(specs), len(names))
	}
	for _, want := range []string{"quickstart", "worm", "flash-crowd", "diurnal", "link-flap", "planetlab-replay"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	if _, err := tomography.BuildScenario("nope", 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestWindowTracksShift injects a forced congestion-state shift and checks
// the window's detector flags it with a small lag while the windowed
// estimates move toward the burst regime — the dynamic-monitor demo's
// assertion, in miniature.
func TestWindowTracksShift(t *testing.T) {
	top := tomography.Figure1A()
	proc, err := tomography.NewMarkovModulated(tomography.MarkovConfig{
		NumLinks: top.NumLinks(),
		Groups: []tomography.MarkovGroup{{
			Links:   []int{0, 1},
			Chain:   tomography.MarkovChain{POn: 0, MeanBurst: 1}, // quiet until forced
			OnProb:  []float64{0.9, 0.85},
			OffProb: []float64{0.03, 0.02},
		}},
		Force: []tomography.ForcedBurst{{Group: 0, Start: 600, End: 1200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tomography.NewWindow(top, tomography.WindowConfig{Size: 200})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tomography.SimulateDynamic(tomography.DynamicSimConfig{
		Topology: top, Process: proc, Snapshots: 1200, Seed: 23,
		OnSnapshot: func(_ int, congested *tomography.PathSet) {
			w.Observe(congested)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cps := w.ChangePoints()
	if len(cps) == 0 {
		t.Fatal("the injected shift at t=600 was never detected")
	}
	lag := cps[0] - 600
	if lag < 0 || lag > 100 {
		t.Fatalf("first detection at t=%d (lag %d), want shortly after 600", cps[0], lag)
	}
	res, err := w.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// The window now covers only burst-regime snapshots: link 0's estimate
	// must be near its burst rate, far above the quiet background.
	if res.CongestionProb[0] < 0.5 {
		t.Fatalf("windowed estimate for link 0 = %.3f, want burst-regime (≥ 0.5)", res.CongestionProb[0])
	}
}
