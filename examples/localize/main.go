// Per-snapshot congested-link localization (Section 3.3).
//
// Knowing every link's long-run congestion probability is only half of the
// operational story: an operator staring at one bad measurement round wants
// to know which links are congested RIGHT NOW. This example runs that
// pipeline on the paper's Figure-1(a) topology:
//
//  1. simulate correlated measurements and compile the topology into an
//     inference plan;
//  2. learn the full joint distribution of each correlation set with the
//     theorem estimator (exact Appendix-A algorithm, via the estimator
//     registry) — and marginals-only probabilities with the independence
//     baseline for contrast;
//  3. for every snapshot, explain the observed congested paths:
//     LocalizeCorrelated uses the learned joint states (it knows e1 and e2
//     usually fail together), plain Localize uses independent marginals;
//  4. score both against the simulator's ground-truth link states.
//
// The correlated localizer detects more truly congested links because a
// snapshot that congests one link of a correlated pair makes its partner
// likely congested too — information the independence assumption throws
// away.
//
// Run with:
//
//	go run ./examples/localize
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/congestion"
)

func main() {
	top := tomography.Figure1A()
	fmt.Println("topology:", top)

	// Ground truth: e1 and e2 congest together far more often than
	// independence predicts; e3 and e4 are independent.
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// RecordLinkStates keeps the simulator's per-snapshot ground truth so
	// localization quality can be scored at the end.
	const snapshots = 20000
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: snapshots, Seed: 5,
		RecordLinkStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}

	// One compiled plan; two estimators from the registry.
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	thmRes, err := tomography.Estimate("theorem", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	thm := thmRes.Theorem
	indep, err := tomography.Estimate("independence", plan, src, tomography.EstimateOptions{
		Algorithm: tomography.Options{UseAllEquations: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The theorem estimator recovered each correlation set's joint state
	// distribution; feed it to the correlated localizer.
	states := tomography.TheoremSetStates(top, thm)
	fmt.Printf("\nlearned joint for {e1,e2}: P(both congested) = %.3f (independence would predict %.3f)\n",
		thm.JointProb[bitset.FromIndices(0, 1).Key()],
		thm.CongestionProb[0]*thm.CongestionProb[1])

	// Localize every snapshot twice: with the joint states and with
	// independent marginals.
	var corrInferred, indepInferred []*tomography.PathSet
	for t := 0; t < rec.Snapshots(); t++ {
		obs := rec.PathSnapshot(t)
		cr, err := tomography.LocalizeCorrelated(top, thm.CongestionProb, states, obs)
		if err != nil {
			log.Fatal(err)
		}
		corrInferred = append(corrInferred, cr.Congested)
		ir, err := tomography.Localize(top, indep.CongestionProb, obs)
		if err != nil {
			log.Fatal(err)
		}
		indepInferred = append(indepInferred, ir.Congested)
	}

	truth := rec.Links.Rows()
	mCorr, err := tomography.EvaluateLocalization(truth, corrInferred)
	if err != nil {
		log.Fatal(err)
	}
	mIndep, err := tomography.EvaluateLocalization(truth, indepInferred)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlocalization quality over %d snapshots:\n", snapshots)
	fmt.Printf("  %-22s detection %.1f%%  false positives %.1f%%\n",
		"correlated (joint):", 100*mCorr.DetectionRate, 100*mCorr.FalsePositiveRate)
	fmt.Printf("  %-22s detection %.1f%%  false positives %.1f%%\n",
		"independent (marginal):", 100*mIndep.DetectionRate, 100*mIndep.FalsePositiveRate)

	// Show one concrete snapshot where the joint knowledge mattered.
	for t := 0; t < rec.Snapshots(); t++ {
		c, i := corrInferred[t], indepInferred[t]
		if c.Equal(truth[t]) && !i.Equal(truth[t]) {
			fmt.Printf("\nexample snapshot %d: congested paths %v\n", t, rec.PathSnapshot(t))
			fmt.Printf("  truth        %v\n  correlated   %v  ✓\n  independent  %v  ✗\n",
				truth[t], c, i)
			break
		}
	}
}
