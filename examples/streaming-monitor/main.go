// Streaming (online) tomography over the columnar measurement store.
//
// Real monitoring systems do not collect a fixed batch of snapshots and
// stop: probes arrive continuously, and operators want current estimates at
// any moment (the continuous-monitoring deployment mode of the
// Nguyen–Thiran line of work). This example drives exactly that loop:
//
//  1. snapshots arrive one at a time and are appended to a streaming
//     Empirical source (a growing columnar SnapshotStore);
//  2. the topology is compiled into an inference plan ONCE — at every
//     checkpoint only the probability right-hand side is re-filled from
//     the stream and re-solved, so estimates sharpen as measurements
//     accumulate without re-deriving the equation structure each time;
//  3. after the last snapshot, the streaming estimates are compared against
//     a one-shot batch over the same data — they are identical, bit for
//     bit, which is the store's streaming-equals-batch guarantee.
//
// Run with:
//
//	go run ./examples/streaming-monitor
package main

import (
	"fmt"
	"log"

	tomography "repro"
)

func main() {
	top := tomography.Figure1A()

	// Ground truth for the simulated feed: the Figure-1(a) correlated model.
	scn, err := tomography.NewScenario(tomography.ScenarioConfig{
		Topology: top, FracCongested: 0.5, Seed: 21, // default Level: high correlation
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "network": a finished simulation record standing in for a probe
	// feed. Snapshots are replayed from it one at a time below.
	const snapshots = 20000
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: scn.Model, Snapshots: snapshots, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compile the topology's inference plan once: admissible path/pair
	// selection and the equation structure are fixed by the topology, so
	// every checkpoint below reuses them and only re-fills probabilities.
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Online estimation: append each arriving snapshot, re-estimate at
	// checkpoints.
	stream := tomography.NewStreaming(top.NumPaths())
	fmt.Printf("streaming %d snapshots through a %d-path monitor:\n\n", snapshots, top.NumPaths())
	fmt.Printf("%10s  %s\n", "snapshots", "inferred P(congested) per link")
	for t := 0; t < snapshots; t++ {
		stream.Append(rec.PathSnapshot(t))
		if n := t + 1; n == 500 || n == 2000 || n == 8000 || n == snapshots {
			res, err := plan.Correlation(stream, tomography.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10d  %v\n", n, fmtProbs(res.CongestionProb))
		}
	}

	// The cross-check: a one-shot batch over the same record must agree
	// exactly with the stream's final state.
	batch, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}
	resStream, err := plan.Correlation(stream, tomography.Options{})
	if err != nil {
		log.Fatal(err)
	}
	resBatch, err := plan.Correlation(batch, tomography.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for k := range resBatch.CongestionProb {
		if resStream.CongestionProb[k] != resBatch.CongestionProb[k] {
			log.Fatalf("link %d: streaming %v != batch %v",
				k, resStream.CongestionProb[k], resBatch.CongestionProb[k])
		}
	}
	fmt.Printf("\nstreaming estimates are identical to the one-shot batch over the same %d snapshots ✓\n", snapshots)
}

func fmtProbs(p []float64) string {
	s := "["
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", v)
	}
	return s + "]"
}
