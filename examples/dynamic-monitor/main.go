// Windowed online tomography over a time-evolving network.
//
// Static batch inference answers "what were the link congestion
// probabilities over the whole measurement campaign?" — but real networks
// shift: a flash crowd ignites, links start flapping, a maintenance window
// ends. This example drives the temporal-dynamics pipeline end to end:
//
//  1. the ground truth is a Markov-modulated congestion process on the
//     Figure-1(a) topology whose correlated group {e1, e2} is quiet until a
//     congestion-state shift is injected at a known snapshot (a forced
//     burst), flooding both links simultaneously;
//  2. a sliding-window monitor (tomography.Window) observes the live feed
//     through the simulator's OnSnapshot tap: one compiled plan, incremental
//     window eviction, and a CUSUM change-point detector on the congested-
//     path fraction;
//  3. when the detector fires, the example reports the detection lag — how
//     many snapshots after the true shift the alarm came — and shows the
//     windowed estimates tracking the new regime while a whole-history
//     batch estimate still dilutes the burst with thousands of quiet
//     snapshots.
//
// Run with:
//
//	go run ./examples/dynamic-monitor
package main

import (
	"fmt"
	"log"

	tomography "repro"
)

func main() {
	top := tomography.Figure1A()

	// Ground truth: links e1 (0) and e2 (1) form the correlated group. The
	// modulator never ignites on its own; the injected burst at t=shift is
	// the congestion-state change the monitor must catch.
	const (
		snapshots = 6000
		shift     = 3000
		window    = 400
	)
	proc, err := tomography.NewMarkovModulated(tomography.MarkovConfig{
		NumLinks: top.NumLinks(),
		Groups: []tomography.MarkovGroup{{
			Links:   []int{0, 1},
			Chain:   tomography.MarkovChain{POn: 0, MeanBurst: 1},
			OnProb:  []float64{0.85, 0.75},
			OffProb: []float64{0.04, 0.03},
		}},
		Force: []tomography.ForcedBurst{{Group: 0, Start: shift, End: snapshots}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The monitor: a 400-snapshot sliding window with the default CUSUM
	// change-point detector, estimating through one compiled plan.
	monitor, err := tomography.NewWindow(top, tomography.WindowConfig{Size: window})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring %d paths with a %d-snapshot sliding window; true shift at t=%d\n\n",
		top.NumPaths(), window, shift)
	fmt.Printf("%8s  %-28s %s\n", "t", "windowed P(congested)", "event")

	detectedAt := -1
	checkpoints := map[int]bool{1000: true, 2900: true, 3100: true, 3400: true, 5900: true}
	rec, err := tomography.SimulateDynamic(tomography.DynamicSimConfig{
		Topology: top, Process: proc, Snapshots: snapshots, Seed: 42,
		OnSnapshot: func(t int, congested *tomography.PathSet) {
			changed := monitor.Observe(congested)
			event := ""
			if changed && detectedAt < 0 {
				detectedAt = t
				event = fmt.Sprintf("congestion-state shift detected (lag %d snapshots)", t-shift)
			}
			if checkpoints[t] || event != "" {
				res, err := monitor.Estimate()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%8d  %-28s %s\n", t, fmtProbs(res.CongestionProb), event)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if detectedAt < 0 {
		log.Fatal("the injected shift was never detected")
	}

	// The contrast: a whole-history batch estimate over all 6000 snapshots
	// still averages the quiet half against the burst half, while the
	// window has fully converged to the new regime.
	batchSrc, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := tomography.Estimate("correlation", monitor.Plan(), batchSrc, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	final, err := monitor.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the shift (burst truth: e1=0.856, e2=0.757):\n")
	fmt.Printf("  %-24s %s\n", "whole-history batch:", fmtProbs(batch.CongestionProb))
	fmt.Printf("  %-24s %s\n", "sliding window:", fmtProbs(final.CongestionProb))
	fmt.Printf("\ndetection lag: %d snapshots; change points: %v\n",
		detectedAt-shift, monitor.ChangePoints())
}

func fmtProbs(p []float64) string {
	s := "["
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", v)
	}
	return s + "]"
}
