// Traceroute discovery + congested-link localization.
//
// This example walks the paper's full operational story:
//
//  1. discover a topology with traceroute over a physical network whose
//     switches/MPLS gear do not respond (internal/trace — the Figure-2
//     construction); logical links that share hidden physical links form
//     correlation sets;
//  2. learn every logical link's congestion probability from end-to-end
//     snapshots (the Section-4 correlation algorithm, run through a
//     compiled inference plan);
//  3. use the learned probabilities to localize which links were congested
//     in each individual snapshot (Localize — the follow-up problem the
//     paper outlines in Section 3.3), and score detection quality against
//     ground truth;
//  4. cross-check the inference with indirect validation [13]
//     (CompareValidation — the paper's "Ongoing Work" experiment).
//
// Run with:
//
//	go run ./examples/traceroute-discovery
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	// 1. Discovery: 100 physical elements, 30% of which are invisible to
	// traceroute; 16 vantage points; 80 measurement paths.
	net, err := trace.Discover(trace.Config{
		Elements: 100, HiddenFrac: 0.3, VantagePoints: 16, Paths: 80, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	top := net.Logical
	multi := 0
	for p := 0; p < top.NumSets(); p++ {
		if top.CorrelationSet(p).Len() > 1 {
			multi++
		}
	}
	fmt.Printf("discovered: %s — %d physical links hidden behind %d logical links, %d multi-link correlation sets\n",
		top, net.NumPhysicalLinks, top.NumLinks(), multi)

	// Ground truth lives on the PHYSICAL links (probabilities per physical
	// link; a logical link is congested iff any of its backing physical
	// links is — the RouterBacked model).
	physP := make([]float64, net.NumPhysicalLinks)
	for i := 0; i < net.NumPhysicalLinks; i += 9 { // every 9th physical link congestible
		physP[i] = 0.05 + float64(i%4)*0.08
	}
	model, err := congestion.NewRouterBacked(net.Backing, physP)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Measure and learn.
	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: model, Snapshots: 4000, Seed: 11,
		RecordLinkStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tomography.Estimate("correlation", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	truth := congestion.Marginals(model)
	var worst float64
	for k := range truth {
		if d := abs(truth[k] - res.CongestionProb[k]); d > worst {
			worst = d
		}
	}
	fmt.Printf("tomography: rank %d/%d, solver %s, worst per-link error %.3f\n",
		res.Linear.System.Rank, top.NumLinks(), res.Linear.Solver, worst)

	// 3. Per-snapshot localization with the learned probabilities.
	var inferred []*tomography.PathSet
	for t := 0; t < rec.Snapshots(); t++ {
		lr, err := tomography.Localize(top, res.CongestionProb, rec.PathSnapshot(t))
		if err != nil {
			log.Fatal(err)
		}
		inferred = append(inferred, lr.Congested)
	}
	m, err := tomography.EvaluateLocalization(rec.Links.Rows(), inferred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("localization over %d snapshots: detection rate %.1f%%, false-positive rate %.1f%%\n",
		m.Snapshots, 100*m.DetectionRate, 100*m.FalsePositiveRate)

	// 4. Indirect validation (hold out 20% of paths, predict their behavior).
	cmp, err := tomography.CompareValidation(top, rec, 0.2, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indirect validation (held-out path good-frequency prediction):\n")
	fmt.Printf("  correlation assumption:  mean abs err %.4f (rmse %.4f) over %d paths\n",
		cmp.Correlation.MeanAbsError, cmp.Correlation.RMSE, len(cmp.Correlation.HeldOut))
	fmt.Printf("  independence assumption: mean abs err %.4f (rmse %.4f)\n",
		cmp.Independence.MeanAbsError, cmp.Independence.RMSE)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
