// Quickstart: the paper's Figure 1(a) worked example, end to end.
//
// We build the toy topology of Figure 1(a) — four links, three paths, links
// e1 and e2 correlated — define a ground-truth congestion process in which
// e1 and e2 really are correlated, simulate end-to-end measurements,
// compile the topology into a reusable inference plan, and recover every
// link's congestion probability with two estimators from the registry: the
// practical Section-4 correlation algorithm and the exact Appendix-A
// theorem algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/bitset"
	"repro/internal/congestion"
)

func main() {
	// The topology of Figure 1(a):
	//   links  e1, e2, e3, e4 (e1 and e2 share a physical link → correlated)
	//   paths  P1 = (e1,e3), P2 = (e2,e3), P3 = (e2,e4)
	top := tomography.Figure1A()
	fmt.Println("topology:", top)

	// Compile the topology into an inference plan: admissible path/pair
	// selection, equation structure and the identifiability check are
	// computed once here and shared by every estimator run below (and by
	// any future run over new measurements of this topology).
	plan, err := tomography.Compile(top, tomography.PlanOptions{Identifiability: true})
	if err != nil {
		log.Fatal(err)
	}

	// Assumption 4 holds on this topology (the paper proves identifiability
	// under it), so every link's congestion probability is recoverable.
	fmt.Println("Assumption 4 (identifiability):", plan.Identifiability(0).Identifiable)
	fmt.Println("registered estimators:", tomography.EstimatorNames())

	// Ground truth: e1 and e2 are congested together far more often than
	// independence would allow (P(both) = 0.18 >> 0.10·0.12); e3 and e4 are
	// independent. The same joint table the library's tests validate against.
	model, err := congestion.NewTable(4, []congestion.GroupTable{
		{
			Links: []int{0, 1},
			States: []congestion.SubsetProb{
				{Links: bitset.New(0), P: 0.60},
				{Links: bitset.FromIndices(0), P: 0.10},
				{Links: bitset.FromIndices(1), P: 0.12},
				{Links: bitset.FromIndices(0, 1), P: 0.18},
			},
		},
		{Links: []int{2}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.8}, {Links: bitset.FromIndices(2), P: 0.2},
		}},
		{Links: []int{3}, States: []congestion.SubsetProb{
			{Links: bitset.New(0), P: 0.9}, {Links: bitset.FromIndices(3), P: 0.1},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 100000 measurement snapshots (Section 5's simulator; state-
	// level mode applies the separability assumption directly).
	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: 100000, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}

	// The practical algorithm (Section 4): forms the log-linear system
	// y1 = x1+x3, y2 = x2+x3, y3 = x2+x4, y23 = x2+x3+x4 and solves it.
	// Estimators resolve by name through the registry; all of them run
	// against the shared compiled plan.
	corr, err := tomography.Estimate("correlation", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sys := corr.Linear.System
	fmt.Printf("\npractical algorithm: %d single-path + %d pair equations, rank %d, solver %s\n",
		sys.SinglePathEqs, sys.PairEqs, sys.Rank, corr.Linear.Solver)

	// The exact theorem algorithm (Appendix A): computes the congestion
	// factors αA for every correlation subset, then the marginals.
	res, err := tomography.Estimate("theorem", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	thm := res.Theorem

	truth := congestion.Marginals(model)
	fmt.Printf("\n%-6s %-8s %-12s %-12s\n", "link", "truth", "correlation", "theorem")
	for k := 0; k < top.NumLinks(); k++ {
		fmt.Printf("%-6s %-8.3f %-12.3f %-12.3f\n",
			top.Link(tomography.LinkID(k)).Name, truth[k],
			corr.CongestionProb[k], thm.CongestionProb[k])
	}

	// The theorem algorithm also recovers the joint: P(e1 ∧ e2 congested).
	joint := thm.JointProb[bitset.FromIndices(0, 1).Key()]
	fmt.Printf("\nP(e1 and e2 congested together): truth 0.180, recovered %.3f\n", joint)
	fmt.Println("(an independence assumption would have predicted",
		fmt.Sprintf("%.3f)", truth[0]*truth[1]))
}
