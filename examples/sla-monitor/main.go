// SLA monitor: the paper's Figure 2(b) scenario.
//
// The operator of one administrative domain wants to determine whether a set
// of neighboring domains honor their service-level agreement. The neighbors
// use MPLS internally, so traceroute only reveals their border routers: each
// neighbor appears as a bundle of domain-level links between border-router
// pairs. Links through the same domain may share physical links and
// management processes — so the operator maps each neighbor domain to one
// correlation set.
//
// The example builds three neighbor domains, lets one of them degrade (its
// internal fabric congests, taking down several of its domain-level links at
// once), infers per-link congestion probabilities from end-to-end
// measurements, aggregates them per domain, and issues SLA verdicts.
//
// Run with:
//
//	go run ./examples/sla-monitor
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/congestion"
)

const (
	domains        = 3   // neighbor domains under an SLA
	bordersPerSide = 2   // border routers on each side of a domain
	slaThreshold   = 0.1 // SLA: each link congested at most 10% of the time
)

func main() {
	// Topology: the operator's measurement hosts sit behind ingress border
	// routers; each neighbor domain d exposes domain-level links between
	// every (ingress border, egress border) pair; egress borders connect to
	// destination hosts. Two hosts per border router keep the topology
	// identifiable, as in the lan-monitor example.
	b := tomography.NewBuilder()

	type domain struct {
		links []tomography.LinkID
	}
	var doms []domain
	var allPaths int
	for d := 0; d < domains; d++ {
		in := b.AddNodes(bordersPerSide)
		out := b.AddNodes(bordersPerSide)
		var access [][]tomography.LinkID // [border][host]
		for i := 0; i < bordersPerSide; i++ {
			var hostLinks []tomography.LinkID
			for h := 0; h < 2; h++ {
				host := b.AddNode()
				hostLinks = append(hostLinks, b.AddLink(host, in[i], fmt.Sprintf("d%d-acc%d%c", d+1, i+1, 'a'+h)))
			}
			access = append(access, hostLinks)
		}
		var egress [][]tomography.LinkID
		for j := 0; j < bordersPerSide; j++ {
			var hostLinks []tomography.LinkID
			for h := 0; h < 2; h++ {
				host := b.AddNode()
				hostLinks = append(hostLinks, b.AddLink(out[j], host, fmt.Sprintf("d%d-dst%d%c", d+1, j+1, 'a'+h)))
			}
			egress = append(egress, hostLinks)
		}
		var dl []tomography.LinkID
		for i := 0; i < bordersPerSide; i++ {
			for j := 0; j < bordersPerSide; j++ {
				dl = append(dl, b.AddLink(in[i], out[j], fmt.Sprintf("d%d-mpls%d%d", d+1, i+1, j+1)))
			}
		}
		// Paths: every (source host, destination host) pair through the
		// corresponding domain-level link.
		for i := 0; i < bordersPerSide; i++ {
			for _, acc := range access[i] {
				for j := 0; j < bordersPerSide; j++ {
					for _, eg := range egress[j] {
						b.AddPath(fmt.Sprintf("d%d-p%d", d+1, allPaths), acc, dl[i*bordersPerSide+j], eg)
						allPaths++
					}
				}
			}
		}
		b.Correlate(dl...)
		doms = append(doms, domain{links: dl})
	}
	top, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology:", top)

	// Ground truth: domain 2's internal fabric is degraded — congested 30%
	// of snapshots, hitting most of its domain-level links together. The
	// other domains are healthy (1-2% idiosyncratic congestion).
	group := make([]int, top.NumLinks())
	for k := range group {
		group[k] = top.SetOf(tomography.LinkID(k))
	}
	causeProb := make([]float64, top.NumSets())
	participation := make([]float64, top.NumLinks())
	idio := make([]float64, top.NumLinks())
	for d, dom := range doms {
		set := top.SetOf(dom.links[0])
		if d == 1 {
			causeProb[set] = 0.30
			for _, l := range dom.links {
				participation[l] = 0.9
				idio[l] = 0.02
			}
		} else {
			for _, l := range dom.links {
				idio[l] = 0.015
			}
		}
	}
	model, err := congestion.NewSharedCause(group, causeProb, participation, idio)
	if err != nil {
		log.Fatal(err)
	}

	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: 40000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tomography.Estimate("correlation", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	truth := congestion.Marginals(model)
	fmt.Printf("\nper-domain SLA verdicts (threshold: P(congested) ≤ %.0f%% per link):\n\n", 100*slaThreshold)
	for d, dom := range doms {
		worstTrue, worstInferred := 0.0, 0.0
		for _, l := range dom.links {
			if truth[l] > worstTrue {
				worstTrue = truth[l]
			}
			if res.CongestionProb[l] > worstInferred {
				worstInferred = res.CongestionProb[l]
			}
		}
		verdict := "HONORED"
		if worstInferred > slaThreshold {
			verdict = "VIOLATED"
		}
		fmt.Printf("domain %d: worst link P(congested) inferred %.3f (true %.3f) → SLA %s\n",
			d+1, worstInferred, worstTrue, verdict)
	}

	fmt.Printf("\nper-link detail for the degraded domain:\n")
	for _, l := range doms[1].links {
		fmt.Printf("  %-12s true %.3f  inferred %.3f\n",
			top.Link(l).Name, truth[l], res.CongestionProb[l])
	}
}
