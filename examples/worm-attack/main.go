// Worm attack: the unknown-correlation-pattern scenario of Section 5
// ("Unknown Correlation Patterns", Figure 5).
//
// A worm periodically orders compromised hosts to flood a set of otherwise
// uncorrelated links. The flooded links congest simultaneously — they are
// correlated — but no operator can know the worm's target list, so the
// tomography algorithm mislabels them as uncorrelated.
//
// The example generates a Brite-style inter-domain topology, overlays a
// hidden attack on links drawn from distinct correlation sets, and measures
// how both algorithms degrade. The correlation algorithm only loses accuracy
// on (some of) the mislabeled links; the independence baseline additionally
// ignores every known correlation set, and its errors compound.
//
// Run with:
//
//	go run ./examples/worm-attack
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/brite"
	"repro/internal/eval"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

func main() {
	net, err := brite.Generate(brite.Config{ASes: 60, EdgesPerAS: 2, Paths: 250, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	top := net.Topology
	fmt.Println("topology:", top)

	// Base congestion: 8% of links congested, highly correlated within
	// correlation sets (all known to the algorithm).
	base, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.08, Level: scenario.HighCorrelation, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The worm: every snapshot, with probability 0.3, it floods its target
	// links — chosen across distinct correlation sets so that the induced
	// correlation crosses every boundary the operator knows about. Half of
	// all congested links end up mislabeled.
	attacked, err := scenario.WithMislabeled(base, 0.5, 0.3, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("congested links: %d (of which %d are worm targets, mislabeled as uncorrelated)\n",
		attacked.CongestedLinks.Len(), attacked.Mislabeled.Len())

	rec, err := netsim.Run(netsim.Config{
		Topology: top, Model: attacked.Model, Snapshots: 2500, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}

	// One compiled plan serves both estimators over the same record.
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	corr, err := tomography.Estimate("correlation", plan, src, tomography.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	indep, err := tomography.Estimate("independence", plan, src, tomography.EstimateOptions{
		Algorithm: tomography.Options{UseAllEquations: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, include interface{ Contains(int) bool }, n int) {
		ce := eval.AbsErrors(attacked.Truth, corr.CongestionProb, nil)
		_ = ce
		var cErrs, iErrs []float64
		for k := range attacked.Truth {
			if !include.Contains(k) {
				continue
			}
			cErrs = append(cErrs, abs(attacked.Truth[k]-corr.CongestionProb[k]))
			iErrs = append(iErrs, abs(attacked.Truth[k]-indep.CongestionProb[k]))
		}
		fmt.Printf("%-34s correlation mean-err %.4f | independence mean-err %.4f (%d links)\n",
			name, eval.Mean(cErrs), eval.Mean(iErrs), n)
	}
	fmt.Println()
	report("all potentially congested links:", attacked.PotentiallyCongested, attacked.PotentiallyCongested.Len())
	report("worm-target (mislabeled) links:", attacked.Mislabeled, attacked.Mislabeled.Len())

	fmt.Println("\nworst-inferred worm targets (correlation algorithm):")
	shown := 0
	attacked.Mislabeled.ForEach(func(k int) bool {
		fmt.Printf("  link %-4d true %.3f  correlation %.3f  independence %.3f\n",
			k, attacked.Truth[k], corr.CongestionProb[k], indep.CongestionProb[k])
		shown++
		return shown < 6
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
