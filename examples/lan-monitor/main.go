// LAN monitor: the paper's Figure 2(a) scenario.
//
// A campus operator monitors the quality of links in her domain with
// tomography, using traceroute to discover the topology. The traceroute
// graph misses the Ethernet switch at the heart of a local-area network, so
// the logical links between the LAN's IP routers silently share the switch's
// physical links — they are correlated. The operator knows which links
// belong to the LAN, so she maps the LAN to one correlation set.
//
// This example builds such a network, makes the hidden switch congest (which
// congests several logical links at once), and shows that the correlation-
// aware algorithm estimates every link's congestion probability accurately
// while the independence baseline mis-attributes the shared congestion.
//
// Run with:
//
//	go run ./examples/lan-monitor
package main

import (
	"fmt"
	"log"

	tomography "repro"
	"repro/internal/congestion"
	"repro/internal/eval"
)

const (
	ingressRouters = 3 // LAN-facing routers on the monitor side
	monitorsPerIn  = 2 // monitors attached to each ingress router
	egressRouters  = 2 // LAN-facing routers on the server side
	serversPerOut  = 2 // servers attached to each egress router
)

func main() {
	// Topology: monitors attach (two per router) to ingress routers; every
	// ingress router reaches every egress router across the hidden switch
	// (logical links lanIJ — one correlation set); egress routers connect to
	// two servers each.
	//
	//   m --accM--> in_i --lanIJ--> out_j --srvJ--> server_j
	//
	// Two monitors per ingress router and two servers per egress router keep
	// the topology identifiable (Assumption 4): with a single access link
	// per ingress router, the subsets {access_i} and {lan_i1, lan_i2} would
	// cover exactly the same paths, and with a single server per egress
	// router, {srv_j} would collide with the LAN column feeding it.
	b := tomography.NewBuilder()
	lanIn := b.AddNodes(ingressRouters)
	lanOut := b.AddNodes(egressRouters)

	var access []tomography.LinkID // index: monitor
	monRouter := map[int]int{}     // monitor -> ingress router
	for i := 0; i < ingressRouters; i++ {
		for m := 0; m < monitorsPerIn; m++ {
			mon := b.AddNode()
			id := b.AddLink(mon, lanIn[i], fmt.Sprintf("acc%d%c", i+1, 'a'+m))
			monRouter[len(access)] = i
			access = append(access, id)
		}
	}
	lan := make([][]tomography.LinkID, ingressRouters)
	for i := range lan {
		lan[i] = make([]tomography.LinkID, egressRouters)
		for j := 0; j < egressRouters; j++ {
			lan[i][j] = b.AddLink(lanIn[i], lanOut[j], fmt.Sprintf("lan%d%d", i+1, j+1))
		}
	}
	egress := make([][]tomography.LinkID, egressRouters) // [router][server]
	for j := 0; j < egressRouters; j++ {
		for sv := 0; sv < serversPerOut; sv++ {
			server := b.AddNode()
			egress[j] = append(egress[j], b.AddLink(lanOut[j], server, fmt.Sprintf("srv%d%c", j+1, 'a'+sv)))
		}
	}
	for m, acc := range access {
		for j := 0; j < egressRouters; j++ {
			for sv := 0; sv < serversPerOut; sv++ {
				b.AddPath(fmt.Sprintf("P%d%d%c", m+1, j+1, 'a'+sv),
					acc, lan[monRouter[m]][j], egress[j][sv])
			}
		}
	}
	var lanAll []tomography.LinkID
	for i := range lan {
		lanAll = append(lanAll, lan[i]...)
	}
	b.Correlate(lanAll...)
	top, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology:", top)
	check := tomography.CheckIdentifiability(top, 0)
	fmt.Println("Assumption 4 (identifiability):", check.Identifiable)

	// Ground truth: the hidden switch is congested 25% of the time and then
	// takes down a random subset of the LAN links (participation 0.8 each);
	// one access link congests independently, for contrast.
	group := make([]int, top.NumLinks())
	for k := range group {
		group[k] = top.SetOf(tomography.LinkID(k))
	}
	causeProb := make([]float64, top.NumSets())
	participation := make([]float64, top.NumLinks())
	idio := make([]float64, top.NumLinks())
	causeProb[top.SetOf(lanAll[0])] = 0.25
	for _, l := range lanAll {
		participation[l] = 0.8
		idio[l] = 0.02
	}
	idio[access[0]] = 0.10
	model, err := congestion.NewSharedCause(group, causeProb, participation, idio)
	if err != nil {
		log.Fatal(err)
	}

	rec, err := tomography.Simulate(tomography.SimConfig{
		Topology: top, Model: model, Snapshots: 50000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := tomography.NewEmpirical(rec)
	if err != nil {
		log.Fatal(err)
	}

	// One compiled plan serves both estimators.
	plan, err := tomography.Compile(top, tomography.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	corr, err := plan.Correlation(src, tomography.Options{})
	if err != nil {
		log.Fatal(err)
	}
	indep, err := plan.Independence(src, tomography.Options{UseAllEquations: true})
	if err != nil {
		log.Fatal(err)
	}

	truth := congestion.Marginals(model)
	fmt.Printf("\ncorrelation algorithm: rank %d/%d (N1=%d singles, N2=%d pairs), solver %s\n",
		corr.System.Rank, top.NumLinks(), corr.System.SinglePathEqs, corr.System.PairEqs, corr.Solver)
	fmt.Printf("\n%-8s %-8s %-12s %-12s\n", "link", "truth", "correlation", "independence")
	for k := 0; k < top.NumLinks(); k++ {
		fmt.Printf("%-8s %-8.3f %-12.3f %-12.3f\n",
			top.Link(tomography.LinkID(k)).Name, truth[k],
			corr.CongestionProb[k], indep.CongestionProb[k])
	}

	ce := eval.AbsErrors(truth, corr.CongestionProb, nil)
	ie := eval.AbsErrors(truth, indep.CongestionProb, nil)
	fmt.Printf("\nmean absolute error: correlation %.4f, independence %.4f\n",
		eval.Mean(ce), eval.Mean(ie))
}
