// Inference-plan benchmarks (BENCH_plan.json): quantify the compile/
// evaluate split of the estimator API redesign — compiling a topology's
// equation structure once and reusing it across sources versus rebuilding
// it from scratch on every inference call.
package tomography_test

import (
	"context"
	"testing"

	tomography "repro"
	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// planWorkload builds the plan-benchmark fixture: a mid-sized Brite
// topology with a correlated scenario and an empirical source.
func planWorkload(b *testing.B, snapshots int) (*scenario.Scenario, *measure.Empirical) {
	b.Helper()
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 150, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	s, err := scenario.Brite(scenario.BriteConfig{
		Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := netsim.Run(netsim.Config{
		Topology: s.Topology, Model: s.Model, Snapshots: snapshots, Seed: 97,
	})
	if err != nil {
		b.Fatal(err)
	}
	src, err := measure.NewEmpirical(rec)
	if err != nil {
		b.Fatal(err)
	}
	return s, src
}

// BenchmarkCompileVsLegacy compares one correlation inference through the
// legacy fused path (BuildEquations per call: candidate enumeration,
// admissibility, rank tracking, solve) against the compiled plan (structure
// compiled once; per call only probability fills and the solve). The
// compile sub-benchmark prices the one-time structural work itself.
func BenchmarkCompileVsLegacy(b *testing.B) {
	metrics := map[string]float64{}
	s, src := planWorkload(b, 1200)
	metrics["paths"] = float64(s.Topology.NumPaths())
	metrics["links"] = float64(s.Topology.NumLinks())

	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Correlation(s.Topology, src, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		metrics["legacy-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CompileLinear(s.Topology, false, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		metrics["compile-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("plan-reuse", func(b *testing.B) {
		lp, err := core.CompileLinear(s.Topology, false, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lp.Run(src); err != nil {
				b.Fatal(err)
			}
		}
		metrics["plan-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if lg, pl := metrics["legacy-ns/op"], metrics["plan-ns/op"]; lg > 0 && pl > 0 {
		metrics["speedup"] = lg / pl
		b.Logf("correlation inference: legacy %.0f ns/op, plan-reuse %.0f ns/op (%.1f×), one-time compile %.0f ns",
			lg, pl, metrics["speedup"], metrics["compile-ns/op"])
	}
	writeBenchJSONFile(b, "BENCH_plan.json", "BenchmarkCompileVsLegacy", metrics)
}

// BenchmarkEvaluateBatchPlanReuse measures the end-to-end win of plan
// sharing on a multi-trial batch over one topology: the per-trial-recompile
// baseline replays what EvaluateBatch did before the redesign (simulate,
// wrap, then Correlation + Independence from scratch per scenario); the
// plan-reuse side is today's EvaluateBatch, whose scenarios share one
// compiled plan. Both run serially on identical seeds, so the difference is
// purely the hoisted structural work.
func BenchmarkEvaluateBatchPlanReuse(b *testing.B) {
	const (
		numScenarios = 8
		snapshots    = 400
		rootSeed     = 9
	)
	net, err := brite.Generate(brite.Config{ASes: 40, EdgesPerAS: 2, Paths: 150, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	// All scenarios share net.Topology — the sweep/trial layout whose
	// structural work the plan amortizes.
	var scenarios []*tomography.Scenario
	for i := 0; i < numScenarios; i++ {
		s, err := scenario.Brite(scenario.BriteConfig{
			Net: net, FracCongested: 0.10, Level: scenario.HighCorrelation, Seed: int64(31 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		scenarios = append(scenarios, s)
	}
	metrics := map[string]float64{
		"scenarios": numScenarios,
		"snapshots": snapshots,
		"paths":     float64(scenarios[0].Topology.NumPaths()),
		"links":     float64(scenarios[0].Topology.NumLinks()),
	}

	b.Run("per-trial-recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, s := range scenarios {
				rec, err := netsim.Run(netsim.Config{
					Topology: s.Topology, Model: s.Model, Snapshots: snapshots,
					// runner.DeriveSeed mirrors EvaluateBatch's per-scenario
					// seeding, so both sides simulate identical records.
					Seed: runner.DeriveSeed(rootSeed, j), Parallelism: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				src, err := measure.NewEmpirical(rec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Correlation(s.Topology, src, core.Options{}); err != nil {
					b.Fatal(err)
				}
				if _, err := core.Independence(s.Topology, src, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		metrics["per-trial-recompile-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("plan-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, err := tomography.EvaluateBatch(context.Background(), scenarios, tomography.BatchOptions{
				Snapshots: snapshots, Seed: rootSeed, Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		metrics["plan-reuse-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if base, pl := metrics["per-trial-recompile-ns/op"], metrics["plan-reuse-ns/op"]; base > 0 && pl > 0 {
		metrics["speedup"] = base / pl
		b.Logf("batch of %d scenarios × %d snapshots: per-trial recompile %.2f ms, plan reuse %.2f ms (%.2f×)",
			numScenarios, snapshots, base/1e6, pl/1e6, metrics["speedup"])
	}
	writeBenchJSONFile(b, "BENCH_plan.json", "BenchmarkEvaluateBatchPlanReuse", metrics)
}
