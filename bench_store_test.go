// Out-of-core segment-store benchmarks (BENCH_store.json): price the fused
// count kernels running over mmap-backed sealed segments against the same
// kernels on the RAM-resident ring, and record the spill write path's
// throughput. The acceptance target for this artifact is warm mapped counts
// at ≥ 0.8× the RAM store — pages are resident after the first pass, so the
// remaining gap is the per-segment dispatch and boundary masking.
package tomography_test

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/segstore"
	"repro/internal/snapstore"
)

// storeBenchFixture appends the same deterministic bursty rows to a
// RAM-resident ring and a tiered store whose window covers every row, so
// both answer identical count queries. snapshots is a multiple of segRows:
// every tiered row but the last segment's worth is sealed to disk and
// queried through the mapped read path.
func storeBenchFixture(b *testing.B, series, snapshots, segRows int) (*snapstore.Store, *segstore.TieredStore, []snapstore.Pair) {
	b.Helper()
	ram := snapstore.NewRing(series, snapshots)
	tiered, err := segstore.NewTiered(series, snapshots, segstore.Options{
		Dir: b.TempDir(), SegmentRows: segRows, Reset: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tiered.Close)
	rng := rand.New(rand.NewSource(41))
	row := bitset.New(series)
	for t := 0; t < snapshots; t++ {
		row.Clear()
		// Bursty fill: a few hot columns plus background noise, so segments
		// carry a realistic mix of zero-span and dense columns.
		for k := 0; k < 6; k++ {
			row.Add(rng.Intn(series))
		}
		if t%97 < 13 {
			row.Add(series - 1 - t%7)
		}
		ram.Append(row)
		tiered.Append(row)
	}
	var pairs []snapstore.Pair
	for i := 0; i < series; i++ {
		for d := 1; d <= 8 && i+d < series; d++ {
			pairs = append(pairs, snapstore.Pair{A: i, B: i + d})
		}
	}
	return ram, tiered, pairs
}

// BenchmarkSegmentStoreCounts is the mapped-vs-RAM count comparison the
// BENCH_store.json artifact records: the batched pair kernel and the
// all-good set kernel on the RAM ring versus the tiered store's warm mapped
// read path (one throwaway pass faults every page in first). Counts are
// verified identical before timing.
func BenchmarkSegmentStoreCounts(b *testing.B) {
	const (
		series    = 128
		segRows   = 8192
		snapshots = 16 * segRows // 131072 rows ≈ 2 MB/column-set segment tier
	)
	ram, tiered, pairs := storeBenchFixture(b, series, snapshots, segRows)
	outRAM := make([]int, len(pairs))
	outMapped := make([]int, len(pairs))
	scratch := make([]uint64, ram.Words())
	sets := [][]int{{0, 1, 2}, {5, 40, 90, 100}, {7}, {30, 31, 32, 33, 34}}

	// Warm + verify: identical counts from both tiers before any timing.
	ram.CountPairsGood(pairs, outRAM)
	tiered.CountPairsGood(pairs, outMapped, 0)
	for k := range pairs {
		if outRAM[k] != outMapped[k] {
			b.Fatalf("pair %v: RAM %d, mapped %d", pairs[k], outRAM[k], outMapped[k])
		}
	}
	for _, s := range sets {
		if r, m := ram.CountAllGood(s, scratch), tiered.CountAllGood(s); r != m {
			b.Fatalf("set %v: RAM %d, mapped %d", s, r, m)
		}
	}

	metrics := map[string]float64{
		"series":          series,
		"snapshots":       snapshots,
		"segment-rows":    segRows,
		"pairs":           float64(len(pairs)),
		"sealed-segments": float64(tiered.SealedSegments()),
		"spilled-bytes":   float64(tiered.SpilledBytes()),
	}
	b.Run("pairs-ram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ram.CountPairsGood(pairs, outRAM)
		}
		metrics["pairs-ram-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("pairs-mapped-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tiered.CountPairsGood(pairs, outMapped, 0)
		}
		metrics["pairs-mapped-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("allgood-ram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sets {
				benchSink += float64(ram.CountAllGood(s, scratch))
			}
		}
		metrics["allgood-ram-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("allgood-mapped-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sets {
				benchSink += float64(tiered.CountAllGood(s))
			}
		}
		metrics["allgood-mapped-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	// Cold read path: drop the mapped pages (MADV_DONTNEED where available)
	// and time one full re-faulting pass — the page-cache price of the first
	// query after a spill.
	b.Run("pairs-mapped-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tiered.ReleaseMapped()
			b.StartTimer()
			tiered.CountPairsGood(pairs, outMapped, 0)
		}
		metrics["pairs-mapped-cold-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if r, m := metrics["pairs-ram-ns/op"], metrics["pairs-mapped-ns/op"]; r > 0 && m > 0 {
		metrics["mapped-vs-ram-pairs"] = r / m
		metrics["mapped-vs-ram-allgood"] = metrics["allgood-ram-ns/op"] / metrics["allgood-mapped-ns/op"]
		b.Logf("counts over %d sealed segments (%d rows × %d series): pairs RAM %.2f ms vs mapped warm %.2f ms (%.2f× of RAM), all-good %.2f× of RAM, cold re-fault %.2f ms",
			tiered.SealedSegments(), snapshots, series, r/1e6, m/1e6,
			metrics["mapped-vs-ram-pairs"], metrics["mapped-vs-ram-allgood"],
			metrics["pairs-mapped-cold-ns/op"]/1e6)
	}
	writeBenchJSONFile(b, "BENCH_store.json", "BenchmarkSegmentStoreCounts", metrics)
}

// BenchmarkSegmentSpill prices the write path: streaming appends through
// the tiered store including encode + CRC + fsync'd seal of every segment,
// against appends into the RAM ring.
func BenchmarkSegmentSpill(b *testing.B) {
	const (
		series  = 128
		segRows = 8192
	)
	rows := make([]*bitset.Set, 1024)
	rng := rand.New(rand.NewSource(43))
	for i := range rows {
		rows[i] = bitset.New(series)
		for k := 0; k < 6; k++ {
			rows[i].Add(rng.Intn(series))
		}
	}
	metrics := map[string]float64{"series": series, "segment-rows": segRows}
	b.Run("ram-append", func(b *testing.B) {
		ram := snapstore.NewRing(series, 4*segRows)
		for i := 0; i < b.N; i++ {
			ram.AppendEvict(rows[i%len(rows)], nil)
		}
		metrics["ram-append-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("spill-append", func(b *testing.B) {
		tiered, err := segstore.NewTiered(series, 4*segRows, segstore.Options{
			Dir: b.TempDir(), SegmentRows: segRows, Reset: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tiered.Close()
		for i := 0; i < b.N; i++ {
			tiered.AppendEvict(rows[i%len(rows)], nil)
		}
		metrics["spill-append-ns/op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		metrics["spilled-bytes"] = float64(tiered.SpilledBytes())
	})
	if r, s := metrics["ram-append-ns/op"], metrics["spill-append-ns/op"]; r > 0 && s > 0 {
		b.Logf("append: RAM %.0f ns/op, spill (amortized seal+fsync) %.0f ns/op (%.1f× RAM)", r, s, s/r)
	}
	writeBenchJSONFile(b, "BENCH_store.json", "BenchmarkSegmentSpill", metrics)
}
