package tomography

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/dynamics"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/segstore"
)

// Time-evolving workloads: re-exports of the internal/dynamics process
// types. A CongestionProcess replaces the i.i.d. per-snapshot Model draw
// with Markov-modulated on/off congestion — bursts that persist across
// snapshots and couple across correlation groups.
type (
	// CongestionProcess is a time-indexed congestion process (see
	// internal/dynamics).
	CongestionProcess = dynamics.Process
	// MarkovModulated is the Markov-modulated on/off congestion process.
	MarkovModulated = dynamics.MarkovModulated
	// MarkovConfig parameterizes NewMarkovModulated.
	MarkovConfig = dynamics.Config
	// MarkovGroup configures one modulated congestion group.
	MarkovGroup = dynamics.Group
	// MarkovChain parameterizes one on/off modulator chain.
	MarkovChain = dynamics.Chain
	// ForcedBurst deterministically forces a modulator on over a snapshot
	// range — the injection mechanism for known congestion-state shifts.
	ForcedBurst = dynamics.ForcedBurst
	// ChangeDetector is the online CUSUM change-point detector windowed
	// inference uses to flag congestion-state shifts.
	ChangeDetector = dynamics.Detector
)

// NewMarkovModulated validates the configuration and builds a
// Markov-modulated congestion process.
func NewMarkovModulated(cfg MarkovConfig) (*MarkovModulated, error) {
	return dynamics.NewMarkovModulated(cfg)
}

// NewChangeDetector returns a CUSUM change-point detector; zero parameters
// take the documented defaults (see internal/dynamics).
func NewChangeDetector(warmup int, drift, threshold float64) (*ChangeDetector, error) {
	return dynamics.NewDetector(warmup, drift, threshold)
}

// DynamicSimConfig parameterizes SimulateDynamic.
type DynamicSimConfig = netsim.DynamicConfig

// SimulateDynamic runs the time-evolving simulator: the process carries
// congestion state from snapshot to snapshot, and observations are emitted
// through the columnar store's streaming path (with an optional OnSnapshot
// tap for online consumers). See netsim.RunDynamic.
func SimulateDynamic(cfg DynamicSimConfig) (*Record, error) {
	return netsim.RunDynamic(context.Background(), cfg)
}

// SimulateDynamicStream is SimulateDynamic without the record: every
// snapshot goes only to cfg.OnSnapshot (required) and nothing is
// materialized in RAM — the generation mode for day-scale replays whose
// observations stream straight into a spill-enabled window. The OnSnapshot
// sequence is bit-identical to SimulateDynamic's under the same
// configuration and seed.
func SimulateDynamicStream(cfg DynamicSimConfig) error {
	return netsim.RunDynamicStream(context.Background(), cfg)
}

// ScenarioSpec describes one named scenario in the registry.
type ScenarioSpec = scenario.Spec

// Scenarios returns every named scenario — quickstart, worm, flash-crowd,
// diurnal, link-flap, planetlab-replay, … — sorted by name. Build one with
// BuildScenario and feed it to EvaluateBatch, or select it on the command
// line with cmd/tomo -scenario.
func Scenarios() []ScenarioSpec { return scenario.Specs() }

// ScenarioNames returns the sorted names of all registered scenarios.
func ScenarioNames() []string { return scenario.Names() }

// BuildScenario builds the named scenario for a seed; equal seeds build
// identical scenarios.
func BuildScenario(name string, seed int64) (*Scenario, error) {
	return scenario.BuildNamed(name, seed)
}

// NewSlidingWindow returns an empty streaming measurement source whose
// estimates cover only the most recent window snapshots: Append past the
// capacity evicts the oldest snapshot from every count and from the pattern
// histogram, keeping memory bounded on an endless stream. At any moment it
// is bit-identical to a one-shot batch source over the retained rows.
// Window wraps one of these together with a compiled plan; use
// NewSlidingWindow directly to drive the registry by hand.
func NewSlidingWindow(numPaths, window int) (*Empirical, error) {
	return measure.NewSlidingWindow(numPaths, window)
}

// SpillConfig configures the out-of-core backend of a spill-enabled sliding
// window: sealed column segments land as checksummed files under Dir (see
// internal/segstore), and counts run on the mapped segments zero-copy. It is
// an alias of segstore.Options.
type SpillConfig = segstore.Options

// NewSlidingWindowSpill is NewSlidingWindow on the out-of-core tiered store:
// the window's retained rows live in a RAM ring only until a segment's worth
// has accumulated, then seal to disk under cfg.Dir. Estimates are
// bit-identical to the RAM-only window over the same rows; memory stays
// bounded by the segment size rather than the window size, so day-scale
// windows run in a fixed RSS budget.
func NewSlidingWindowSpill(numPaths, window int, cfg SpillConfig) (*Empirical, error) {
	return measure.NewSlidingWindowSpill(numPaths, window, cfg)
}

// WindowConfig parameterizes NewWindow.
type WindowConfig struct {
	// Size is the sliding-window length in snapshots (> 0): estimates cover
	// only the most recent Size observations.
	Size int
	// Estimator is the registry name to run per estimate ("" ⇒ correlation).
	Estimator string
	// Options tunes the estimator.
	Options EstimateOptions
	// Plan optionally supplies a precompiled plan for the topology; nil
	// compiles one lazily. Several windows over one topology should share a
	// plan.
	Plan *Plan
	// Detector overrides the change-point detector (nil ⇒ defaults). The
	// detector observes the per-snapshot fraction of congested paths.
	Detector *ChangeDetector
	// CountWorkers fans the window's batched pair-count kernel out across
	// that many workers during estimates (0 or 1 ⇒ serial). Estimates are
	// bit-identical for every setting. A window that has estimated with
	// CountWorkers > 1 holds parked pool goroutines until Close.
	CountWorkers int
	// Spill, when non-nil, backs the window with the out-of-core segment
	// store: sealed column segments land under Spill.Dir and counts run on
	// the mapped files. Estimates stay bit-identical to the RAM-only window;
	// RSS stays bounded by the segment size instead of Size. CountWorkers is
	// ignored for spill windows (the directory-skip kernels run serially).
	Spill *SpillConfig
}

// Window is an online sliding-window inference session: feed it one
// observation per snapshot with Observe, ask for current estimates at any
// moment with Estimate. The topology's equation structure is compiled once
// (or shared via WindowConfig.Plan) and reused by every estimate; the
// measurement window keeps counts and the congestion-pattern histogram
// incrementally, evicting the oldest snapshot as new ones arrive. A built-in
// change-point detector watches the observation stream and records
// congestion-state shifts.
//
// A frozen window estimates bit-identically to a one-shot batch over the
// same rows (the windowed==batch equivalence guarantee). Window methods must
// not be called concurrently, with one deliberate exception: Close may race
// an in-flight Estimate/EstimateShared/Observe — it waits for the call to
// finish, then closes (see Close). Concurrent reads belong on the immutable
// snapshots View produces, not on the window itself.
type Window struct {
	plan     *Plan
	name     string
	opts     EstimateOptions
	src      *Empirical
	detector *ChangeDetector
	numPaths int
	seen     int
	// ws is the window's evaluate workspace: the plan stays shared across
	// windows, while every per-estimate buffer (equation RHS, solver matrix,
	// LP tableau, MLE optimizer state) lives here and is reused, so a
	// steady-state EstimateShared allocates nothing.
	ws *Workspace

	// mu serializes the lifecycle against in-flight operations: Close takes
	// it, so closing during an estimate drains rather than pulling the
	// count-worker pool (or, for spill windows, the segment mappings) out
	// from under the estimator mid-count.
	mu     sync.Mutex
	closed bool
}

// NewWindow opens a sliding-window inference session over a topology.
func NewWindow(top *Topology, cfg WindowConfig) (*Window, error) {
	if top == nil {
		return nil, fmt.Errorf("tomography: NewWindow: nil topology")
	}
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("tomography: NewWindow: window size = %d, want > 0", cfg.Size)
	}
	name := cfg.Estimator
	if name == "" {
		name = "correlation"
	}
	if _, ok := LookupEstimator(name); !ok {
		return nil, fmt.Errorf("tomography: NewWindow: unknown estimator %q (registered: %v)", name, EstimatorNames())
	}
	p := cfg.Plan
	if p == nil {
		var err error
		p, err = Compile(top, PlanOptions{Lazy: true})
		if err != nil {
			return nil, err
		}
	} else if p.Topology() != top {
		return nil, fmt.Errorf("tomography: NewWindow: the supplied plan was compiled for a different topology")
	}
	var src *Empirical
	var err error
	if cfg.Spill != nil {
		src, err = measure.NewSlidingWindowSpill(top.NumPaths(), cfg.Size, *cfg.Spill)
	} else {
		src, err = measure.NewSlidingWindow(top.NumPaths(), cfg.Size)
	}
	if err != nil {
		return nil, err
	}
	src.SetCountWorkers(cfg.CountWorkers)
	det := cfg.Detector
	if det == nil {
		det, err = NewChangeDetector(0, 0, 0)
		if err != nil {
			return nil, err
		}
	}
	return &Window{
		plan:     p,
		name:     name,
		opts:     cfg.Options,
		src:      src,
		detector: det,
		numPaths: top.NumPaths(),
		ws:       NewWorkspace(),
	}, nil
}

// Observe feeds one snapshot's congested-path observation, evicting the
// oldest retained snapshot once the window is full. It reports whether the
// change-point detector flagged a congestion-state shift on this snapshot.
// Observing a closed window panics: dropping observations silently would
// desync every downstream consumer.
func (w *Window) Observe(congested *PathSet) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("tomography: Window.Observe on a closed window")
	}
	w.src.Append(congested)
	w.seen++
	return w.detector.Observe(float64(congested.Len()) / float64(w.numPaths))
}

// ObserveBatch feeds a batch of snapshots in observation order, equivalent
// to calling Observe on each row but with the window maintenance batched:
// the evictions the batch forces are applied in one blocked pass over the
// columns and the probability caches are reset once. It returns how many of
// the batch's snapshots the change-point detector flagged. Rows may be
// reused by the caller after the call returns.
func (w *Window) ObserveBatch(rows []*PathSet) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("tomography: Window.ObserveBatch on a closed window")
	}
	w.src.AppendBatch(rows)
	w.seen += len(rows)
	flagged := 0
	for _, row := range rows {
		if w.detector.Observe(float64(row.Len()) / float64(w.numPaths)) {
			flagged++
		}
	}
	return flagged
}

// ObserveBatchWords is ObserveBatch with the batch presented as packed
// word-rows: rows snapshots, each wordsPerRow uint64 words (bit i of word
// w ⇒ path w*64+i congested), laid out back to back in words — the exact
// layout the binary probe wire format carries and the window's columns
// store, so wire ingest appends without materializing a PathSet per
// snapshot. Results are bit-identical to ObserveBatch over equal rows:
// same evictions, same detector observations (the congested fraction is a
// popcount over each word row), same single cache reset. The words may be
// reused by the caller after the call returns.
func (w *Window) ObserveBatchWords(words []uint64, wordsPerRow, rows int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("tomography: Window.ObserveBatchWords on a closed window")
	}
	w.src.AppendBatchWords(words, wordsPerRow, rows)
	w.seen += rows
	flagged := 0
	for r := 0; r < rows; r++ {
		row := words[r*wordsPerRow : (r+1)*wordsPerRow]
		if w.detector.Observe(float64(bitset.PopCountWords(row)) / float64(w.numPaths)) {
			flagged++
		}
	}
	return flagged
}

// Close releases the window's resources: the pool goroutines behind a
// CountWorkers > 1 window, and — for spill windows — the window's reference
// to its mapped segments. Close is idempotent, and safe against an
// in-flight Estimate/EstimateShared/Observe from another goroutine: it
// waits for the operation to finish rather than tearing resources out from
// under it. After Close, estimates return an error and Observe panics;
// snapshot views taken earlier (View) remain independently valid until
// their own Close.
func (w *Window) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.src.Close()
}

// Estimate runs the configured estimator over the current window contents
// through the shared compiled plan. The result is independently allocated
// and may be retained across estimates; for the allocation-free steady
// state use EstimateShared.
func (w *Window) Estimate() (*EstimateResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("tomography: Window.Estimate: window is closed")
	}
	if w.src.Snapshots() == 0 {
		return nil, fmt.Errorf("tomography: Window.Estimate: no observations yet")
	}
	return Estimate(w.name, w.plan, w.src, w.opts)
}

// EstimateShared is Estimate on the window's own workspace: after the first
// few calls have grown the buffers, a steady-state estimate allocates
// nothing for the linear and theorem estimators (and a small constant for
// mle). The result is bit-identical to Estimate but aliases the workspace —
// read it (or copy what you keep) before the next EstimateShared on this
// window.
func (w *Window) EstimateShared() (*EstimateResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("tomography: Window.EstimateShared: window is closed")
	}
	if w.src.Snapshots() == 0 {
		return nil, fmt.Errorf("tomography: Window.EstimateShared: no observations yet")
	}
	return EstimateIn(w.ws, w.name, w.plan, w.src, w.opts)
}

// WindowView is an immutable snapshot of a Window at one instant: the
// frozen measurement source (measure.Empirical.SnapshotView — sealed
// mmap'd segments shared by reference, only the active-buffer delta
// copied), the shared compiled plan, and the window's progress gauges.
// Views are what estimate-side read replicas consume: any number of
// goroutines may each hold a view and run EstimateIn against it with their
// own Workspace while the window keeps observing, and every view estimate
// is bit-identical to what Window.Estimate would have returned at the
// moment View was called. Close releases the view's storage (for spill
// windows, its segment-mapping references); a closed view may be passed
// back to View as the recycle argument.
type WindowView struct {
	src          *Empirical
	name         string
	plan         *Plan
	opts         EstimateOptions
	seen         int
	len          int
	changePoints int
}

// View freezes the window's current contents into an immutable WindowView.
// The cost is independent of the window size for spill windows (segments
// are shared by reference) and one column copy for RAM windows; passing a
// previously closed view as recycle reuses its storage, so a steady-state
// publisher allocates nothing. View must be called by the goroutine that
// owns the window's observations, and panics on a closed window.
func (w *Window) View(recycle *WindowView) *WindowView {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("tomography: Window.View on a closed window")
	}
	v := recycle
	var src *Empirical
	if v != nil {
		src = v.src
	} else {
		v = &WindowView{}
	}
	v.src = w.src.SnapshotView(src)
	v.name, v.plan, v.opts = w.name, w.plan, w.opts
	v.seen = w.seen
	v.len = v.src.Snapshots()
	v.changePoints = len(w.detector.ChangePoints())
	return v
}

// EstimateIn runs the view's configured estimator over the frozen window
// contents on the caller's workspace — EstimateShared semantics for read
// replicas: each replica goroutine owns one Workspace and reuses it across
// views, so steady-state replica estimates allocate nothing. The result
// aliases the workspace; read or detach it before the workspace's next
// estimate.
func (v *WindowView) EstimateIn(ws *Workspace) (*EstimateResult, error) {
	if v.src.Snapshots() == 0 {
		return nil, fmt.Errorf("tomography: WindowView.EstimateIn: no observations in view")
	}
	return EstimateIn(ws, v.name, v.plan, v.src, v.opts)
}

// Source exposes the view's frozen measurement source.
func (v *WindowView) Source() *Empirical { return v.src }

// Seen returns the window's lifetime observation count at snapshot time.
func (v *WindowView) Seen() int { return v.seen }

// Len returns the number of snapshots retained in the view.
func (v *WindowView) Len() int { return v.len }

// ChangePoints returns how many change-point alerts the window's detector
// had fired at snapshot time.
func (v *WindowView) ChangePoints() int { return v.changePoints }

// Close releases the view's storage — for spill windows, the references
// that keep shared segment mappings alive. Idempotent; a closed view may be
// recycled through Window.View.
func (v *WindowView) Close() {
	if v.src != nil {
		v.src.Close()
	}
}

// Source exposes the window's measurement source (e.g. to run a second
// estimator over the same window through the registry).
func (w *Window) Source() *Empirical { return w.src }

// Plan returns the compiled plan the window estimates through.
func (w *Window) Plan() *Plan { return w.plan }

// Seen returns the total number of snapshots observed.
func (w *Window) Seen() int { return w.seen }

// Len returns the number of snapshots currently in the window
// (min(Seen, Size)).
func (w *Window) Len() int { return w.src.Snapshots() }

// ChangePoints returns the snapshot indices at which the detector flagged
// congestion-state shifts.
func (w *Window) ChangePoints() []int { return w.detector.ChangePoints() }

// WindowPoint is one checkpoint of a windowed replay: the estimate over the
// window ending at (0-based) snapshot T.
type WindowPoint struct {
	// T is the index of the last snapshot included in the window.
	T int
	// Result is the estimate over the window's rows.
	Result *EstimateResult
	// Changed reports whether a congestion-state shift was flagged anywhere
	// in (prevT, T].
	Changed bool
}

// WindowedEstimate replays a record through a sliding window of cfg.Size
// snapshots, estimating every stride snapshots (and at the final snapshot),
// starting once the window has filled. One plan is compiled (or shared via
// cfg.Plan) for the whole replay. It is the offline counterpart of driving a
// Window from a live feed.
func WindowedEstimate(top *Topology, rec *Record, cfg WindowConfig, stride int) ([]WindowPoint, error) {
	if rec == nil || rec.Paths == nil {
		return nil, fmt.Errorf("tomography: WindowedEstimate: nil record")
	}
	if stride <= 0 {
		return nil, fmt.Errorf("tomography: WindowedEstimate: stride = %d, want > 0", stride)
	}
	w, err := NewWindow(top, cfg)
	if err != nil {
		return nil, err
	}
	n := rec.Snapshots()
	var out []WindowPoint
	changed := false
	for t := 0; t < n; t++ {
		if w.Observe(rec.PathSnapshot(t)) {
			changed = true
		}
		full := t+1 >= cfg.Size
		checkpoint := (t+1)%stride == 0 || t == n-1
		if !full || !checkpoint {
			continue
		}
		res, err := w.Estimate()
		if err != nil {
			return nil, fmt.Errorf("tomography: WindowedEstimate at snapshot %d: %w", t, err)
		}
		out = append(out, WindowPoint{T: t, Result: res, Changed: changed})
		changed = false
	}
	return out, nil
}

// WindowedEstimateFunc is the steady-state form of WindowedEstimate: instead
// of materializing every checkpoint, it invokes fn with each WindowPoint as
// it is produced. The point's Result lives in the window's workspace and the
// replay's row scratch is reused, so after warm-up the loop allocates
// nothing per snapshot for the linear and theorem estimators — the
// monitoring loop runs garbage-free at whatever rate snapshots arrive.
// The Result passed to fn is valid only during the call; copy what you keep.
// fn returning a non-nil error stops the replay and returns that error.
func WindowedEstimateFunc(top *Topology, rec *Record, cfg WindowConfig, stride int, fn func(WindowPoint) error) error {
	if rec == nil || rec.Paths == nil {
		return fmt.Errorf("tomography: WindowedEstimate: nil record")
	}
	if stride <= 0 {
		return fmt.Errorf("tomography: WindowedEstimate: stride = %d, want > 0", stride)
	}
	w, err := NewWindow(top, cfg)
	if err != nil {
		return err
	}
	row := NewPathSet()
	n := rec.Snapshots()
	changed := false
	for t := 0; t < n; t++ {
		rec.Paths.RowInto(t, row)
		if w.Observe(row) {
			changed = true
		}
		full := t+1 >= cfg.Size
		checkpoint := (t+1)%stride == 0 || t == n-1
		if !full || !checkpoint {
			continue
		}
		res, err := w.EstimateShared()
		if err != nil {
			return fmt.Errorf("tomography: WindowedEstimate at snapshot %d: %w", t, err)
		}
		if err := fn(WindowPoint{T: t, Result: res, Changed: changed}); err != nil {
			return err
		}
		changed = false
	}
	return nil
}
